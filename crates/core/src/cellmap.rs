//! Cell maps: the small, broadcastable structures that classify every
//! non-empty cell (paper §III-C and §III-E).
//!
//! A [`CellMap`] holds one [`CellType`] per **non-empty** cell plus the
//! neighbor-offset table, so executors can answer "what type is cell C?",
//! "which non-empty cells neighbor C?" and "which core cells neighbor C?"
//! without touching point data.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use dbscout_spatial::{CellCoord, NeighborOffsets, SpatialError};

type DetState = BuildHasherDefault<DefaultHasher>;

/// Classification of a non-empty cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellType {
    /// Contains ≥ `minPts` points (Definition 6): every point inside is a
    /// core point (Lemma 1), so the cell is also core.
    Dense,
    /// Non-dense but contains at least one core point (Definition 7).
    Core,
    /// Neither dense nor (known to be) core.
    Other,
}

impl CellType {
    /// Whether the cell is a core cell (dense cells are core, Lemma 1 ⇒
    /// Definition 7).
    pub fn is_core(self) -> bool {
        matches!(self, CellType::Dense | CellType::Core)
    }
}

/// A broadcastable map from non-empty cell coordinates to [`CellType`].
#[derive(Debug, Clone)]
pub struct CellMap {
    types: HashMap<CellCoord, CellType, DetState>,
    offsets: NeighborOffsets,
}

impl CellMap {
    /// Builds the *dense* cell map from per-cell point counts
    /// (paper Algorithm 2): `Dense` iff the count reaches `min_pts`.
    ///
    /// # Errors
    ///
    /// Fails if `dims` is unsupported or `min_pts` is zero.
    pub fn from_counts(
        dims: usize,
        counts: impl IntoIterator<Item = (CellCoord, usize)>,
        min_pts: usize,
    ) -> Result<Self, SpatialError> {
        if min_pts == 0 {
            return Err(SpatialError::InvalidMinPts);
        }
        let offsets = NeighborOffsets::new(dims)?;
        let types = counts
            .into_iter()
            .map(|(c, n)| {
                let t = if n >= min_pts {
                    CellType::Dense
                } else {
                    CellType::Other
                };
                (c, t)
            })
            .collect();
        Ok(Self { types, offsets })
    }

    /// Number of known (non-empty) cells.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the map knows no cells.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The type of a cell; `None` for empty (unknown) cells.
    pub fn cell_type(&self, cell: &CellCoord) -> Option<CellType> {
        self.types.get(cell).copied()
    }

    /// Whether `cell` is dense.
    pub fn is_dense(&self, cell: &CellCoord) -> bool {
        matches!(self.cell_type(cell), Some(CellType::Dense))
    }

    /// Whether `cell` is a core cell.
    pub fn is_core(&self, cell: &CellCoord) -> bool {
        self.cell_type(cell).is_some_and(CellType::is_core)
    }

    /// Marks a non-dense cell as core (paper Algorithm 4). Dense cells are
    /// left as `Dense` — they already imply core.
    pub fn promote_to_core(&mut self, cell: &CellCoord) {
        if let Some(t) = self.types.get_mut(cell) {
            if *t == CellType::Other {
                *t = CellType::Core;
            }
        }
    }

    /// The non-empty neighbor cells of `cell`, itself included
    /// (Definition 8 restricted to cells that exist in the grid).
    pub fn neighbors<'a>(&'a self, cell: &'a CellCoord) -> impl Iterator<Item = CellCoord> + 'a {
        self.offsets
            .iter()
            .map(move |o| NeighborOffsets::apply(cell, o))
            .filter(|n| self.types.contains_key(n))
    }

    /// The neighbor cells of `cell` that are core cells.
    pub fn core_neighbors<'a>(
        &'a self,
        cell: &'a CellCoord,
    ) -> impl Iterator<Item = CellCoord> + 'a {
        self.offsets
            .iter()
            .map(move |o| NeighborOffsets::apply(cell, o))
            .filter(|n| self.is_core(n))
    }

    /// Whether `cell` has at least one core neighbor (fast path of the
    /// outliers phase: none ⇒ every point of the cell is an outlier).
    pub fn has_core_neighbor(&self, cell: &CellCoord) -> bool {
        self.core_neighbors(cell).next().is_some()
    }

    /// Iterates over all `(cell, type)` entries, in unspecified order.
    /// Order-sensitive callers must canonicalize.
    pub fn iter(&self) -> impl Iterator<Item = (&CellCoord, CellType)> + '_ {
        // xlint: ordered -- documented order-free; consumers count or probe by key
        self.types.iter().map(|(c, t)| (c, *t))
    }

    /// Number of dense cells.
    pub fn dense_cells(&self) -> usize {
        // xlint: ordered -- counting matches is order-insensitive
        self.types
            .values()
            .filter(|t| matches!(t, CellType::Dense))
            .count()
    }

    /// Number of core cells (dense included).
    pub fn core_cells(&self) -> usize {
        // xlint: ordered -- counting matches is order-insensitive
        self.types.values().filter(|t| t.is_core()).count()
    }

    /// The neighbor-offset table (shared with callers that iterate raw
    /// offsets).
    pub fn offsets(&self) -> &NeighborOffsets {
        &self.offsets
    }
}

/// The cell-major layout's analogue of [`CellMap`]: dense/core flags
/// keyed by *cell index* (position in
/// [`dbscout_spatial::CellMajorStore::cells`]) instead of coordinate
/// hash, so the hot loops classify a cell with one array load.
#[derive(Debug, Clone)]
pub struct CellFlags {
    dense: Vec<bool>,
    /// Non-dense cells promoted by Algorithm 4; disjoint from `dense`.
    promoted: Vec<bool>,
    dense_cells: usize,
    promoted_cells: usize,
}

impl CellFlags {
    /// Builds the dense flags from per-cell point counts in cell-index
    /// order (paper Algorithm 2): dense iff the count reaches `min_pts`.
    ///
    /// # Errors
    ///
    /// Fails if `min_pts` is zero.
    pub fn from_counts(
        counts: impl IntoIterator<Item = usize>,
        min_pts: usize,
    ) -> Result<Self, SpatialError> {
        if min_pts == 0 {
            return Err(SpatialError::InvalidMinPts);
        }
        let dense: Vec<bool> = counts.into_iter().map(|n| n >= min_pts).collect();
        let dense_cells = dense.iter().filter(|&&d| d).count();
        let promoted = vec![false; dense.len()];
        Ok(Self {
            dense,
            promoted,
            dense_cells,
            promoted_cells: 0,
        })
    }

    /// Number of cells tracked.
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// Whether no cells are tracked.
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// Whether cell `idx` is dense (out-of-range ⇒ `false`).
    #[inline]
    pub fn is_dense(&self, idx: usize) -> bool {
        self.dense.get(idx).copied().unwrap_or(false)
    }

    /// Whether cell `idx` is a core cell — dense (Lemma 1) or promoted
    /// (Algorithm 4).
    #[inline]
    pub fn is_core(&self, idx: usize) -> bool {
        self.is_dense(idx) || self.promoted.get(idx).copied().unwrap_or(false)
    }

    /// Marks a non-dense cell as core (paper Algorithm 4); dense cells
    /// and out-of-range indices are left alone.
    pub fn promote_to_core(&mut self, idx: usize) {
        if self.is_dense(idx) {
            return;
        }
        if let Some(p) = self.promoted.get_mut(idx) {
            if !*p {
                *p = true;
                self.promoted_cells += 1;
            }
        }
    }

    /// Number of dense cells.
    pub fn dense_cells(&self) -> usize {
        self.dense_cells
    }

    /// Number of core cells (dense included).
    pub fn core_cells(&self) -> usize {
        self.dense_cells + self.promoted_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(x: i64, y: i64) -> CellCoord {
        CellCoord::from_slice(&[x, y])
    }

    fn map_2d(entries: &[((i64, i64), usize)], min_pts: usize) -> CellMap {
        CellMap::from_counts(
            2,
            entries.iter().map(|&((x, y), n)| (cell(x, y), n)),
            min_pts,
        )
        .unwrap()
    }

    #[test]
    fn dense_classification_threshold() {
        let m = map_2d(&[((0, 0), 5), ((1, 0), 4), ((2, 0), 6)], 5);
        assert_eq!(m.cell_type(&cell(0, 0)), Some(CellType::Dense));
        assert_eq!(m.cell_type(&cell(1, 0)), Some(CellType::Other));
        assert_eq!(m.cell_type(&cell(2, 0)), Some(CellType::Dense));
        assert_eq!(m.cell_type(&cell(9, 9)), None);
        assert_eq!(m.dense_cells(), 2);
    }

    #[test]
    fn dense_is_core() {
        let m = map_2d(&[((0, 0), 5)], 5);
        assert!(m.is_core(&cell(0, 0)));
        assert!(m.is_dense(&cell(0, 0)));
    }

    #[test]
    fn promote_to_core_only_upgrades_other() {
        let mut m = map_2d(&[((0, 0), 5), ((1, 0), 2)], 5);
        m.promote_to_core(&cell(1, 0));
        assert_eq!(m.cell_type(&cell(1, 0)), Some(CellType::Core));
        // Dense stays dense.
        m.promote_to_core(&cell(0, 0));
        assert_eq!(m.cell_type(&cell(0, 0)), Some(CellType::Dense));
        // Unknown cells are ignored.
        m.promote_to_core(&cell(9, 9));
        assert_eq!(m.cell_type(&cell(9, 9)), None);
        assert_eq!(m.core_cells(), 2);
    }

    #[test]
    fn neighbors_filter_to_non_empty() {
        // Only (0,0) and (1,1) exist; (5,5) is far away.
        let m = map_2d(&[((0, 0), 3), ((1, 1), 3), ((5, 5), 3)], 5);
        let n: Vec<_> = m.neighbors(&cell(0, 0)).collect();
        assert!(n.contains(&cell(0, 0)), "cell is its own neighbor");
        assert!(n.contains(&cell(1, 1)));
        assert!(!n.contains(&cell(5, 5)));
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn core_neighbors_require_core_type() {
        let mut m = map_2d(&[((0, 0), 2), ((1, 0), 2), ((0, 1), 7)], 5);
        // (0,1) is dense ⇒ core; (1,0) is other.
        let cn: Vec<_> = m.core_neighbors(&cell(0, 0)).collect();
        assert_eq!(cn, vec![cell(0, 1)]);
        assert!(m.has_core_neighbor(&cell(0, 0)));
        // Promote (1,0): now two core neighbors.
        m.promote_to_core(&cell(1, 0));
        assert_eq!(m.core_neighbors(&cell(0, 0)).count(), 2);
    }

    #[test]
    fn no_core_neighbor_detected() {
        let m = map_2d(&[((0, 0), 2), ((10, 10), 9)], 5);
        assert!(!m.has_core_neighbor(&cell(0, 0)));
        assert!(m.has_core_neighbor(&cell(10, 10)), "self-neighborhood");
    }

    #[test]
    fn neighbor_range_respects_kd() {
        // A lone cell surrounded by every cell in a 7x7 block: exactly the
        // k_2 = 21 neighboring cells (incl. itself) must be returned.
        let mut entries = Vec::new();
        for x in -3..=3 {
            for y in -3..=3 {
                entries.push(((x, y), 1));
            }
        }
        let m = map_2d(&entries, 5);
        assert_eq!(m.neighbors(&cell(0, 0)).count(), 21);
    }

    #[test]
    fn empty_map() {
        let m = map_2d(&[], 5);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.core_cells(), 0);
    }

    #[test]
    fn cell_flags_mirror_cell_map_semantics() {
        let mut f = CellFlags::from_counts([5, 2, 7, 1], 5).unwrap();
        assert_eq!(f.len(), 4);
        assert!(f.is_dense(0) && f.is_dense(2));
        assert!(!f.is_dense(1) && !f.is_dense(3));
        assert_eq!(f.dense_cells(), 2);
        assert_eq!(f.core_cells(), 2, "dense cells are core");
        // Promote a non-dense cell; dense and repeated promotions no-op.
        f.promote_to_core(1);
        f.promote_to_core(1);
        f.promote_to_core(0);
        f.promote_to_core(99);
        assert!(f.is_core(1));
        assert!(!f.is_core(3));
        assert!(!f.is_core(99));
        assert_eq!(f.core_cells(), 3);
        assert_eq!(f.dense_cells(), 2);
    }

    #[test]
    fn cell_flags_reject_zero_min_pts() {
        assert!(matches!(
            CellFlags::from_counts([1, 2], 0),
            Err(SpatialError::InvalidMinPts)
        ));
        let f = CellFlags::from_counts(std::iter::empty(), 3).unwrap();
        assert!(f.is_empty());
    }
}
