//! The legacy hashed-map incremental engine.
//!
//! Points live in per-cell `Vec<PointId>` lists behind a deterministic
//! `HashMap` — the layout the incremental core shipped with before the
//! cell-major port. It remains as the [`ExecutionLayout::Hashed`]
//! engine: simple, allocation-heavy, always scalar distances (there is
//! no columnar run to unroll over). The algorithm — delta evaluation on
//! insert and delete — is documented on the facade
//! ([`crate::incremental`]); this module only differs in *how*
//! ε-neighborhoods are enumerated.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use dbscout_spatial::cell::{cell_of, cell_side, CellCoord};
use dbscout_spatial::distance::within;
use dbscout_spatial::points::PointId;
use dbscout_spatial::{NeighborOffsets, PointStore, SpatialError};
use dbscout_telemetry::KernelCounters;

use crate::error::Result;
use crate::labels::{OutlierResult, PhaseTimings, PointLabel, RunStats};
use crate::params::DbscoutParams;

#[allow(unused_imports)] // rustdoc link target
use crate::native::ExecutionLayout;

type DetState = BuildHasherDefault<DefaultHasher>;

/// Hashed-map incremental state: per-cell id lists, scalar distances.
#[derive(Debug, Clone)]
pub(crate) struct HashedEngine {
    params: DbscoutParams,
    side: f64,
    store: PointStore,
    cells: HashMap<CellCoord, Vec<PointId>, DetState>,
    offsets: NeighborOffsets,
    /// Exact ε-neighbor count per point (self included).
    counts: Vec<u32>,
    labels: Vec<PointLabel>,
    /// Tombstones: `false` once a point has been removed. Removed points
    /// keep their slot (ids stay stable) but leave every computation.
    alive: Vec<bool>,
    num_alive: usize,
    counters: KernelCounters,
}

impl HashedEngine {
    pub(crate) fn new(dims: usize, params: DbscoutParams) -> Result<Self> {
        let offsets = NeighborOffsets::new(dims)?;
        Ok(Self {
            params,
            side: cell_side(params.eps, dims),
            store: PointStore::new(dims)?,
            cells: HashMap::default(),
            offsets,
            counts: Vec::new(),
            labels: Vec::new(),
            alive: Vec::new(),
            num_alive: 0,
            counters: KernelCounters::new(),
        })
    }

    pub(crate) fn len(&self) -> usize {
        self.num_alive
    }

    pub(crate) fn total_inserted(&self) -> usize {
        self.labels.len()
    }

    pub(crate) fn is_alive(&self, id: PointId) -> bool {
        self.alive.get(id as usize).copied().unwrap_or(false)
    }

    pub(crate) fn params(&self) -> DbscoutParams {
        self.params
    }

    pub(crate) fn label(&self, id: PointId) -> PointLabel {
        self.labels
            .get(id as usize)
            .copied()
            .unwrap_or(PointLabel::Outlier)
    }

    pub(crate) fn labels(&self) -> &[PointLabel] {
        &self.labels
    }

    pub(crate) fn outliers(&self) -> Vec<PointId> {
        self.labels
            .iter()
            .zip(&self.alive)
            .enumerate()
            .filter(|&(_, (l, &alive))| alive && l.is_outlier())
            .map(|(i, _)| i as PointId)
            .collect()
    }

    pub(crate) fn store(&self) -> &PointStore {
        &self.store
    }

    pub(crate) fn kernel_counters(&self) -> KernelCounters {
        self.counters
    }

    pub(crate) fn snapshot(&self) -> OutlierResult {
        let labels: Vec<PointLabel> = self
            .labels
            .iter()
            .zip(&self.alive)
            .map(|(&l, &alive)| if alive { l } else { PointLabel::Covered })
            .collect();
        let min_pts = self.params.min_pts;
        let mut dense_cells = 0;
        let mut core_cells = 0;
        // xlint: ordered -- counting matches is order-insensitive
        for ids in self.cells.values() {
            dense_cells += usize::from(ids.len() >= min_pts);
            let has_core = ids
                .iter()
                .any(|&id| self.labels.get(id as usize) == Some(&PointLabel::Core));
            core_cells += usize::from(has_core);
        }
        let stats = RunStats {
            num_cells: self.cells.len(),
            dense_cells,
            core_cells,
            ..RunStats::default()
        };
        OutlierResult::from_labels(labels, stats, PhaseTimings::default())
    }

    /// Rejects points the store would reject, without mutating it.
    fn validate(&self, point: &[f64]) -> Result<()> {
        if point.len() != self.store.dims() {
            return Err(SpatialError::DimensionMismatch {
                expected: self.store.dims(),
                got: point.len(),
            }
            .into());
        }
        for (dim, &x) in point.iter().enumerate() {
            if !x.is_finite() {
                return Err(SpatialError::NonFiniteCoordinate {
                    point: self.total_inserted(),
                    dim,
                }
                .into());
            }
        }
        Ok(())
    }

    pub(crate) fn insert(&mut self, point: &[f64]) -> Result<PointId> {
        let id = self.store.push(point)?;
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts as u32;
        let cell = cell_of(point, self.side);

        // Find all ε-neighbors of the new point among existing points and
        // bump their counts; collect the ones that just became core.
        let mut my_count = 1u32; // self
        let mut newly_core: Vec<PointId> = Vec::new();
        for off in self.offsets.iter() {
            let ncell = NeighborOffsets::apply(&cell, off);
            let Some(ids) = self.cells.get(&ncell) else {
                continue;
            };
            self.counters.cells_visited += 1;
            self.counters.distance_evals += ids.len() as u64;
            for &q in ids {
                if within(point, self.store.point(q), eps_sq) {
                    my_count += 1;
                    if let Some(cnt) = self.counts.get_mut(q as usize) {
                        *cnt += 1;
                        if *cnt == min_pts {
                            newly_core.push(q);
                        }
                    }
                }
            }
        }

        // Label the new point before registering it, so the coverage scan
        // only ever sees fully-labelled points.
        let label = if my_count >= min_pts {
            newly_core.push(id);
            PointLabel::Core
        } else if self.covered_by_core(point, &cell) {
            PointLabel::Covered
        } else {
            PointLabel::Outlier
        };
        self.cells.entry(cell).or_default().push(id);
        self.counts.push(my_count);
        self.labels.push(label);
        self.alive.push(true);
        self.num_alive += 1;

        // Every newly-core point upgrades itself and rescues the former
        // outliers inside its ε-ball (monotone: no downgrade can occur).
        for c in newly_core {
            if let Some(l) = self.labels.get_mut(c as usize) {
                *l = PointLabel::Core;
            }
            let (ccell, cpoint) = {
                let p = self.store.point(c);
                (cell_of(p, self.side), p.to_vec())
            };
            for off in self.offsets.iter() {
                let ncell = NeighborOffsets::apply(&ccell, off);
                let Some(ids) = self.cells.get(&ncell) else {
                    continue;
                };
                self.counters.cells_visited += 1;
                for &q in ids {
                    if self.labels.get(q as usize) != Some(&PointLabel::Outlier) {
                        continue;
                    }
                    self.counters.distance_evals += 1;
                    if within(&cpoint, self.store.point(q), eps_sq) {
                        if let Some(l) = self.labels.get_mut(q as usize) {
                            *l = PointLabel::Covered;
                        }
                    }
                }
            }
        }
        Ok(id)
    }

    pub(crate) fn remove(&mut self, id: PointId) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts as u32;
        let point = self.store.point(id).to_vec();
        let cell = cell_of(&point, self.side);

        // Unregister the point. A live point is always indexed under its
        // cell; tolerating a missing entry keeps this path panic-free.
        if let Some(a) = self.alive.get_mut(id as usize) {
            *a = false;
        }
        self.num_alive -= 1;
        if let Some(members) = self.cells.get_mut(&cell) {
            if let Some(pos) = members.iter().position(|&q| q == id) {
                members.swap_remove(pos);
            }
            if members.is_empty() {
                self.cells.remove(&cell);
            }
        }

        // Decrement neighbor counts; collect core points that lost their
        // status, plus the removed point itself if it was core — their
        // coverage contributions vanish together.
        let mut lost_cores: Vec<PointId> = Vec::new();
        if self.labels.get(id as usize) == Some(&PointLabel::Core) {
            lost_cores.push(id);
        }
        for off in self.offsets.iter() {
            let ncell = NeighborOffsets::apply(&cell, off);
            let Some(ids) = self.cells.get(&ncell) else {
                continue;
            };
            self.counters.cells_visited += 1;
            self.counters.distance_evals += ids.len() as u64;
            for &q in ids {
                if within(&point, self.store.point(q), eps_sq) {
                    let demoted = match self.counts.get_mut(q as usize) {
                        Some(cnt) => {
                            *cnt -= 1;
                            *cnt == min_pts - 1
                        }
                        None => false,
                    };
                    if demoted && self.labels.get(q as usize) == Some(&PointLabel::Core) {
                        lost_cores.push(q);
                    }
                }
            }
        }

        // First drop every lost core out of the Core class so the
        // coverage scans below see the post-removal core set...
        for &c in &lost_cores {
            if let Some(l) = self.labels.get_mut(c as usize) {
                *l = PointLabel::Covered; // provisional
            }
        }
        // ...then re-evaluate every live point that may have depended on
        // a lost core: the demoted points themselves and all Covered
        // points within ε of any lost core.
        let mut affected: Vec<PointId> = Vec::new();
        for &c in &lost_cores {
            if c != id {
                affected.push(c);
            }
            let cpoint = self.store.point(c).to_vec();
            let ccell = cell_of(&cpoint, self.side);
            for off in self.offsets.iter() {
                let ncell = NeighborOffsets::apply(&ccell, off);
                let Some(ids) = self.cells.get(&ncell) else {
                    continue;
                };
                self.counters.cells_visited += 1;
                for &r in ids {
                    if self.labels.get(r as usize) != Some(&PointLabel::Covered) {
                        continue;
                    }
                    self.counters.distance_evals += 1;
                    if within(&cpoint, self.store.point(r), eps_sq) {
                        affected.push(r);
                    }
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();
        for r in affected {
            if self.labels.get(r as usize) == Some(&PointLabel::Core) {
                continue; // still core through its own count
            }
            let rpoint = self.store.point(r).to_vec();
            let rcell = cell_of(&rpoint, self.side);
            let verdict = if self.covered_by_core(&rpoint, &rcell) {
                PointLabel::Covered
            } else {
                PointLabel::Outlier
            };
            if let Some(l) = self.labels.get_mut(r as usize) {
                *l = verdict;
            }
        }
        true
    }

    /// Classifies a point as if it were inserted, without inserting it.
    /// Pinned equal to "insert, read the label" by the property suite.
    pub(crate) fn probe(&mut self, point: &[f64]) -> Result<PointLabel> {
        self.validate(point)?;
        let eps_sq = self.params.eps_sq();
        let min_pts = self.params.min_pts as u32;
        let cell = cell_of(point, self.side);
        let mut count = 1u32; // the probe point itself
        let mut covered = false;
        for off in self.offsets.iter() {
            let ncell = NeighborOffsets::apply(&cell, off);
            let Some(ids) = self.cells.get(&ncell) else {
                continue;
            };
            self.counters.cells_visited += 1;
            self.counters.distance_evals += ids.len() as u64;
            for &q in ids {
                if within(point, self.store.point(q), eps_sq) {
                    count += 1;
                    // Covered if q is core already, or would become core
                    // with the probe point as its one extra neighbor.
                    covered = covered
                        || self.labels.get(q as usize) == Some(&PointLabel::Core)
                        || self.counts.get(q as usize).copied() == Some(min_pts - 1);
                }
            }
        }
        Ok(if count >= min_pts {
            PointLabel::Core
        } else if covered {
            PointLabel::Covered
        } else {
            PointLabel::Outlier
        })
    }

    /// Whether `point` lies within ε of some existing core point.
    fn covered_by_core(&mut self, point: &[f64], cell: &CellCoord) -> bool {
        let eps_sq = self.params.eps_sq();
        for off in self.offsets.iter() {
            let ncell = NeighborOffsets::apply(cell, off);
            let Some(ids) = self.cells.get(&ncell) else {
                continue;
            };
            self.counters.cells_visited += 1;
            for &q in ids {
                if self.labels.get(q as usize) != Some(&PointLabel::Core) {
                    continue;
                }
                self.counters.distance_evals += 1;
                if within(point, self.store.point(q), eps_sq) {
                    self.counters.early_exit_hits += 1;
                    return true;
                }
            }
        }
        false
    }
}
