//! The cell-major incremental engine.
//!
//! Live points sit in a [`MutableCellMajor`] — the slack-slot mutable
//! companion of the batch [`dbscout_spatial::CellMajorStore`] — so every
//! ε-neighborhood enumeration runs through the same audited counted
//! kernels as the batch fast path: bbox pruning via
//! `min_sq_dist_to_bbox`, [`KernelKind`] dispatch (scalar or
//! lane-unrolled), and [`KernelCounters`] accounting. Labels, exact
//! neighbor counts, and liveness stay id-indexed side arrays, exactly as
//! in the hashed engine; only the neighborhood scan differs.
//!
//! The algorithm (delta evaluation on insert and delete) is documented
//! on the facade ([`crate::incremental`]).

use dbscout_spatial::cell::{cell_of, cell_side};
use dbscout_spatial::mutable::MutableCellMajor;
use dbscout_spatial::points::PointId;
use dbscout_spatial::{KernelKind, NeighborOffsets, PointStore, SpatialError};
use dbscout_telemetry::KernelCounters;

use crate::error::Result;
use crate::labels::{OutlierResult, PhaseTimings, PointLabel, RunStats};
use crate::params::DbscoutParams;

/// Cell-major incremental state: columnar live points, counted kernels.
#[derive(Debug, Clone)]
pub(crate) struct CellMajorEngine {
    params: DbscoutParams,
    side: f64,
    /// Every point ever inserted, by id — removed points keep their
    /// coordinates here (ids are never recycled), so `store()` and the
    /// delete path's "where was it" lookups stay O(1).
    all_points: PointStore,
    /// Live points only, in the mutable slack-slot layout the kernels
    /// scan.
    mstore: MutableCellMajor,
    offsets: NeighborOffsets,
    /// Exact ε-neighbor count per point (self included).
    counts: Vec<u32>,
    labels: Vec<PointLabel>,
    alive: Vec<bool>,
    num_alive: usize,
    /// The resolved distance kernel (never `Auto`).
    kernel: KernelKind,
    counters: KernelCounters,
}

impl CellMajorEngine {
    pub(crate) fn new(dims: usize, params: DbscoutParams, kernel: KernelKind) -> Result<Self> {
        let offsets = NeighborOffsets::new(dims)?;
        let mstore = MutableCellMajor::new(dims, params.eps)?;
        Ok(Self {
            params,
            side: cell_side(params.eps, dims),
            all_points: PointStore::new(dims)?,
            mstore,
            offsets,
            counts: Vec::new(),
            labels: Vec::new(),
            alive: Vec::new(),
            num_alive: 0,
            kernel: kernel.resolve(),
            counters: KernelCounters::new(),
        })
    }

    pub(crate) fn len(&self) -> usize {
        self.num_alive
    }

    pub(crate) fn total_inserted(&self) -> usize {
        self.labels.len()
    }

    pub(crate) fn is_alive(&self, id: PointId) -> bool {
        self.alive.get(id as usize).copied().unwrap_or(false)
    }

    pub(crate) fn params(&self) -> DbscoutParams {
        self.params
    }

    pub(crate) fn kernel(&self) -> KernelKind {
        self.kernel
    }

    pub(crate) fn label(&self, id: PointId) -> PointLabel {
        self.labels
            .get(id as usize)
            .copied()
            .unwrap_or(PointLabel::Outlier)
    }

    pub(crate) fn labels(&self) -> &[PointLabel] {
        &self.labels
    }

    pub(crate) fn outliers(&self) -> Vec<PointId> {
        self.labels
            .iter()
            .zip(&self.alive)
            .enumerate()
            .filter(|&(_, (l, &alive))| alive && l.is_outlier())
            .map(|(i, _)| i as PointId)
            .collect()
    }

    pub(crate) fn store(&self) -> &PointStore {
        &self.all_points
    }

    pub(crate) fn kernel_counters(&self) -> KernelCounters {
        self.counters
    }

    pub(crate) fn rebuilds(&self) -> u64 {
        self.mstore.rebuilds()
    }

    pub(crate) fn compactions(&self) -> u64 {
        self.mstore.compactions()
    }

    pub(crate) fn snapshot(&self) -> OutlierResult {
        let labels: Vec<PointLabel> = self
            .labels
            .iter()
            .zip(&self.alive)
            .map(|(&l, &alive)| if alive { l } else { PointLabel::Covered })
            .collect();
        let min_pts = self.params.min_pts;
        let mut dense_cells = 0;
        let mut core_cells = 0;
        let ids = self.mstore.store().orig_ids();
        for (_, range) in self.mstore.live_ranges() {
            dense_cells += usize::from(range.len() >= min_pts);
            let has_core = range.clone().any(|slot| {
                ids.get(slot)
                    .and_then(|&id| self.labels.get(id as usize))
                    .map(|l| matches!(l, PointLabel::Core))
                    .unwrap_or(false)
            });
            core_cells += usize::from(has_core);
        }
        let stats = RunStats {
            num_cells: self.mstore.num_live_cells(),
            dense_cells,
            core_cells,
            ..RunStats::default()
        };
        OutlierResult::from_labels(labels, stats, PhaseTimings::default())
    }

    /// Rejects points the store would reject, without mutating it.
    fn validate(&self, point: &[f64]) -> Result<()> {
        if point.len() != self.all_points.dims() {
            return Err(SpatialError::DimensionMismatch {
                expected: self.all_points.dims(),
                got: point.len(),
            }
            .into());
        }
        for (dim, &x) in point.iter().enumerate() {
            if !x.is_finite() {
                return Err(SpatialError::NonFiniteCoordinate {
                    point: self.total_inserted(),
                    dim,
                }
                .into());
            }
        }
        Ok(())
    }

    /// Collects the ids of every live point within ε of `point` via the
    /// counted kernels: per neighbor cell, bbox prune then a
    /// kernel-dispatched columnar scan over the cell's live run.
    fn neighbors_of(&mut self, point: &[f64], out: &mut Vec<PointId>) {
        out.clear();
        let coord = cell_of(point, self.side);
        let eps_sq = self.params.eps_sq();
        let mut slots: Vec<u32> = Vec::new();
        for off in self.offsets.iter() {
            let ncoord = NeighborOffsets::apply(&coord, off);
            let store = self.mstore.store();
            let Some(ci) = store.cell_index(&ncoord) else {
                continue;
            };
            let Some(rec) = store.cells().get(ci as usize).copied() else {
                continue;
            };
            if rec.is_empty() {
                continue;
            }
            self.counters.cells_visited += 1;
            if store.min_sq_dist_to_bbox(point, ci as usize) > eps_sq {
                self.counters.bbox_prunes += 1;
                continue;
            }
            slots.clear();
            let comps =
                store.collect_within_kernel(point, rec.range(), eps_sq, self.kernel, &mut slots);
            self.counters.distance_evals += comps;
            let ids = store.orig_ids();
            for &slot in &slots {
                if let Some(&id) = ids.get(slot as usize) {
                    out.push(id);
                }
            }
        }
    }

    pub(crate) fn insert(&mut self, point: &[f64]) -> Result<PointId> {
        let id = self.all_points.push(point)?;
        let min_pts = self.params.min_pts as u32;

        // ε-neighbors among the live points (the new point is not in the
        // mutable store yet), exactly the set the hashed engine scans.
        let mut nbrs: Vec<PointId> = Vec::new();
        self.neighbors_of(point, &mut nbrs);
        let my_count = 1 + nbrs.len() as u32;
        let mut newly_core: Vec<PointId> = Vec::new();
        for &q in &nbrs {
            if let Some(cnt) = self.counts.get_mut(q as usize) {
                *cnt += 1;
                if *cnt == min_pts {
                    newly_core.push(q);
                }
            }
        }

        // Label the new point before registering it, so the coverage scan
        // only ever sees fully-labelled points.
        let label = if my_count >= min_pts {
            newly_core.push(id);
            PointLabel::Core
        } else if nbrs
            .iter()
            .any(|&q| self.labels.get(q as usize) == Some(&PointLabel::Core))
        {
            PointLabel::Covered
        } else {
            PointLabel::Outlier
        };
        self.mstore
            .insert(id, point)
            .map_err(crate::DbscoutError::from)?;
        self.counts.push(my_count);
        self.labels.push(label);
        self.alive.push(true);
        self.num_alive += 1;

        // Every newly-core point upgrades itself and rescues the former
        // outliers inside its ε-ball (monotone: no downgrade can occur).
        let mut cn: Vec<PointId> = Vec::new();
        for c in newly_core {
            if let Some(l) = self.labels.get_mut(c as usize) {
                *l = PointLabel::Core;
            }
            let cpoint = self.all_points.point(c).to_vec();
            self.neighbors_of(&cpoint, &mut cn);
            for &q in &cn {
                if self.labels.get(q as usize) == Some(&PointLabel::Outlier) {
                    if let Some(l) = self.labels.get_mut(q as usize) {
                        *l = PointLabel::Covered;
                    }
                }
            }
        }
        Ok(id)
    }

    pub(crate) fn remove(&mut self, id: PointId) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        let min_pts = self.params.min_pts as u32;
        let point = self.all_points.point(id).to_vec();

        // Unregister first, so every scan below sees the survivor set.
        self.mstore.remove(id);
        if let Some(a) = self.alive.get_mut(id as usize) {
            *a = false;
        }
        self.num_alive -= 1;

        // Decrement neighbor counts; collect core points that lost their
        // status, plus the removed point itself if it was core — their
        // coverage contributions vanish together.
        let mut lost_cores: Vec<PointId> = Vec::new();
        if self.labels.get(id as usize) == Some(&PointLabel::Core) {
            lost_cores.push(id);
        }
        let mut nbrs: Vec<PointId> = Vec::new();
        self.neighbors_of(&point, &mut nbrs);
        for &q in &nbrs {
            let demoted = match self.counts.get_mut(q as usize) {
                Some(cnt) => {
                    *cnt -= 1;
                    *cnt == min_pts - 1
                }
                None => false,
            };
            if demoted && self.labels.get(q as usize) == Some(&PointLabel::Core) {
                lost_cores.push(q);
            }
        }

        // First drop every lost core out of the Core class so the
        // coverage scans below see the post-removal core set...
        for &c in &lost_cores {
            if let Some(l) = self.labels.get_mut(c as usize) {
                *l = PointLabel::Covered; // provisional
            }
        }
        // ...then re-evaluate every live point that may have depended on
        // a lost core: the demoted points themselves and all Covered
        // points within ε of any lost core.
        let mut affected: Vec<PointId> = Vec::new();
        let mut cn: Vec<PointId> = Vec::new();
        for &c in &lost_cores {
            if c != id {
                affected.push(c);
            }
            let cpoint = self.all_points.point(c).to_vec();
            self.neighbors_of(&cpoint, &mut cn);
            for &r in &cn {
                if self.labels.get(r as usize) == Some(&PointLabel::Covered) {
                    affected.push(r);
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();
        let mut rn: Vec<PointId> = Vec::new();
        for r in affected {
            if self.labels.get(r as usize) == Some(&PointLabel::Core) {
                continue; // still core through its own count
            }
            let rpoint = self.all_points.point(r).to_vec();
            self.neighbors_of(&rpoint, &mut rn);
            let covered = rn
                .iter()
                .any(|&q| self.labels.get(q as usize) == Some(&PointLabel::Core));
            let verdict = if covered {
                PointLabel::Covered
            } else {
                PointLabel::Outlier
            };
            if let Some(l) = self.labels.get_mut(r as usize) {
                *l = verdict;
            }
        }
        true
    }

    /// Classifies a point as if it were inserted, without inserting it.
    /// Pinned equal to "insert, read the label" by the property suite.
    pub(crate) fn probe(&mut self, point: &[f64]) -> Result<PointLabel> {
        self.validate(point)?;
        let min_pts = self.params.min_pts as u32;
        let mut nbrs: Vec<PointId> = Vec::new();
        self.neighbors_of(point, &mut nbrs);
        if 1 + nbrs.len() as u32 >= min_pts {
            return Ok(PointLabel::Core);
        }
        // Covered if a neighbor is core already, or would become core
        // with the probe point as its one extra neighbor.
        let covered = nbrs.iter().any(|&q| {
            self.labels.get(q as usize) == Some(&PointLabel::Core)
                || self.counts.get(q as usize).copied() == Some(min_pts - 1)
        });
        Ok(if covered {
            PointLabel::Covered
        } else {
            PointLabel::Outlier
        })
    }
}
