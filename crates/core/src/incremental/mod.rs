//! Incremental DBSCOUT — exact labels under insert *and* delete, an
//! extension beyond the paper.
//!
//! The batch algorithm answers "which points are outliers *now*"; GPS
//! workloads, the paper's motivating domain, grow and churn
//! continuously. This module maintains the Definition 2–3 labels
//! exactly under both mutation directions, with work localized to the
//! affected ε-neighborhood (the Ester et al. 1998 delta-evaluation
//! approach):
//!
//! * **Insertion is monotone**: neighbor counts only grow, so points
//!   only ever move Outlier → Covered → Core, never back. The new
//!   point's ε-neighbors each gain one neighbor — some cross the
//!   `minPts` threshold and become core — and every newly-core point
//!   immediately covers the former outliers in its own ε-ball.
//! * **Deletion is non-monotone**: ε-neighbors of the removed point
//!   lose one neighbor each, core points can drop below `minPts` and
//!   stop vouching for their surroundings, and points they covered may
//!   revert to outliers. The damage is confined to the 2-hop cell
//!   neighborhood of the removed point: the demoted cores, plus every
//!   Covered point within ε of a demoted (or removed) core, are
//!   re-evaluated against the post-removal core set.
//!
//! Each operation touches only the O(k_d) neighboring cells of the
//! affected points, so maintenance stays constant-time for fixed
//! parameters (amortized over bounded-density data).
//!
//! **The equivalence invariant**, pinned by a randomized property suite
//! over interleaved insert/delete/probe sequences: after *any* sequence
//! of operations, the live points carry byte-identical labels to a
//! from-scratch batch run on the surviving points.
//!
//! Two interchangeable engines implement the state, selected by
//! [`ExecutionLayout`]:
//!
//! * [`ExecutionLayout::CellMajor`] (the default) keeps the live points
//!   in a [`dbscout_spatial::MutableCellMajor`] — slack-slot columnar
//!   runs with bbox metadata — so neighborhood scans run through the
//!   same pruned, [`KernelKind`]-dispatched, counter-audited kernels as
//!   the batch fast path;
//! * [`ExecutionLayout::Hashed`] keeps per-cell id lists in a hash map
//!   (the original formulation): simpler, allocation-heavy, always
//!   scalar distances.

mod cell_major;
mod hashed;

use dbscout_spatial::points::PointId;
use dbscout_spatial::{KernelKind, PointStore};
use dbscout_telemetry::KernelCounters;

use crate::error::Result;
use crate::labels::{OutlierResult, PointLabel};
use crate::native::ExecutionLayout;
use crate::params::DbscoutParams;

use cell_major::CellMajorEngine;
use hashed::HashedEngine;

/// An exactly-maintained DBSCOUT state under point insertion and
/// removal.
///
/// Ids are issued consecutively from 0 and never recycled; removal
/// tombstones the id but keeps it addressable. Labels are exact after
/// every operation — equal to a batch run on the live points.
///
/// ```
/// use dbscout_core::incremental::IncrementalDbscout;
/// use dbscout_core::{DbscoutParams, PointLabel};
///
/// let params = DbscoutParams::new(1.0, 3).unwrap();
/// let mut inc = IncrementalDbscout::new(2, params).unwrap();
/// let lone = inc.insert(&[100.0, 100.0]).unwrap();
/// assert_eq!(inc.label(lone), PointLabel::Outlier);
/// let mut ids = Vec::new();
/// for i in 0..3 {
///     ids.push(inc.insert(&[i as f64 * 0.1, 0.0]).unwrap());
/// }
/// // The cluster is dense now; the far point is still the only outlier.
/// assert_eq!(inc.outliers(), vec![lone]);
/// // Deleting a cluster member dissolves it again: every survivor
/// // reverts to outlier, exactly as a batch run would label them.
/// assert!(inc.remove(ids[1]));
/// assert_eq!(inc.outliers().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalDbscout {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    // Both engines boxed: they are hundreds of bytes and the facade
    // moves by value, so the enum stays pointer-sized either way.
    Hashed(Box<HashedEngine>),
    CellMajor(Box<CellMajorEngine>),
}

impl IncrementalDbscout {
    /// An empty incremental detector for `dims`-dimensional points, on
    /// the default cell-major layout with the `Auto` kernel.
    pub fn new(dims: usize, params: DbscoutParams) -> Result<Self> {
        Self::with_layout(dims, params, ExecutionLayout::CellMajor, KernelKind::Auto)
    }

    /// An empty incremental detector on an explicit layout and kernel.
    /// The hashed layout has no lane-unrolled scan; it ignores `kernel`
    /// and always runs scalar (matching
    /// [`crate::ExecutionConfig::resolved_kernel`]).
    pub fn with_layout(
        dims: usize,
        params: DbscoutParams,
        layout: ExecutionLayout,
        kernel: KernelKind,
    ) -> Result<Self> {
        let inner = match layout {
            ExecutionLayout::Hashed => Inner::Hashed(Box::new(HashedEngine::new(dims, params)?)),
            ExecutionLayout::CellMajor => {
                Inner::CellMajor(Box::new(CellMajorEngine::new(dims, params, kernel)?))
            }
        };
        Ok(Self { inner })
    }

    /// Bulk-loads an initial dataset (equivalent to inserting every point
    /// in order) on the default layout.
    pub fn from_store(store: &PointStore, params: DbscoutParams) -> Result<Self> {
        Self::from_store_with(store, params, ExecutionLayout::CellMajor, KernelKind::Auto)
    }

    /// Bulk-loads an initial dataset on an explicit layout and kernel.
    pub fn from_store_with(
        store: &PointStore,
        params: DbscoutParams,
        layout: ExecutionLayout,
        kernel: KernelKind,
    ) -> Result<Self> {
        let mut inc = Self::with_layout(store.dims(), params, layout, kernel)?;
        for (_, p) in store.iter() {
            inc.insert(p)?;
        }
        Ok(inc)
    }

    /// The layout this detector runs on.
    pub fn layout(&self) -> ExecutionLayout {
        match &self.inner {
            Inner::Hashed(_) => ExecutionLayout::Hashed,
            Inner::CellMajor(_) => ExecutionLayout::CellMajor,
        }
    }

    /// The resolved distance kernel (always [`KernelKind::Scalar`] on
    /// the hashed layout).
    pub fn kernel(&self) -> KernelKind {
        match &self.inner {
            Inner::Hashed(_) => KernelKind::Scalar,
            Inner::CellMajor(e) => e.kernel(),
        }
    }

    /// Number of live (non-removed) points.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Hashed(e) => e.len(),
            Inner::CellMajor(e) => e.len(),
        }
    }

    /// Whether the detector holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of slots ever allocated (live + removed); ids are always
    /// `0..total_inserted()`.
    pub fn total_inserted(&self) -> usize {
        match &self.inner {
            Inner::Hashed(e) => e.total_inserted(),
            Inner::CellMajor(e) => e.total_inserted(),
        }
    }

    /// Whether `id` is live (inserted and not removed).
    pub fn is_alive(&self, id: PointId) -> bool {
        match &self.inner {
            Inner::Hashed(e) => e.is_alive(id),
            Inner::CellMajor(e) => e.is_alive(id),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> DbscoutParams {
        match &self.inner {
            Inner::Hashed(e) => e.params(),
            Inner::CellMajor(e) => e.params(),
        }
    }

    /// The current label of a point. Ids this detector never issued
    /// report [`PointLabel::Outlier`].
    pub fn label(&self, id: PointId) -> PointLabel {
        match &self.inner {
            Inner::Hashed(e) => e.label(id),
            Inner::CellMajor(e) => e.label(id),
        }
    }

    /// All current labels, indexed by point id.
    pub fn labels(&self) -> &[PointLabel] {
        match &self.inner {
            Inner::Hashed(e) => e.labels(),
            Inner::CellMajor(e) => e.labels(),
        }
    }

    /// Ids of all current live outliers, ascending.
    pub fn outliers(&self) -> Vec<PointId> {
        match &self.inner {
            Inner::Hashed(e) => e.outliers(),
            Inner::CellMajor(e) => e.outliers(),
        }
    }

    /// Every point ever inserted, by id (removed points keep their
    /// coordinates; ids are never recycled).
    pub fn store(&self) -> &PointStore {
        match &self.inner {
            Inner::Hashed(e) => e.store(),
            Inner::CellMajor(e) => e.store(),
        }
    }

    /// Kernel work counters accumulated over every operation so far
    /// (inserts, removals, probes). On the cell-major layout these come
    /// from the counted batch kernels (bbox prunes included); the hashed
    /// layout tallies its scalar scans.
    pub fn kernel_counters(&self) -> KernelCounters {
        match &self.inner {
            Inner::Hashed(e) => e.kernel_counters(),
            Inner::CellMajor(e) => e.kernel_counters(),
        }
    }

    /// Cell-run relocations the mutable store performed (always 0 on
    /// the hashed layout).
    pub fn rebuilds(&self) -> u64 {
        match &self.inner {
            Inner::Hashed(_) => 0,
            Inner::CellMajor(e) => e.rebuilds(),
        }
    }

    /// Whole-layout compactions the mutable store performed (always 0
    /// on the hashed layout).
    pub fn compactions(&self) -> u64 {
        match &self.inner {
            Inner::Hashed(_) => 0,
            Inner::CellMajor(e) => e.compactions(),
        }
    }

    /// The current state as a batch [`OutlierResult`] (one label per
    /// ever-issued id). Removed points are reported as
    /// [`PointLabel::Covered`] so they never surface in the outlier list;
    /// timings and distance counters are zero — the incremental engine
    /// spreads its work across operations (see [`Self::kernel_counters`]
    /// for the accumulated totals).
    pub fn snapshot(&self) -> OutlierResult {
        match &self.inner {
            Inner::Hashed(e) => e.snapshot(),
            Inner::CellMajor(e) => e.snapshot(),
        }
    }

    /// Inserts one point and restores all label invariants; returns the
    /// new point's id.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or non-finite coordinates
    /// ([`dbscout_spatial::SpatialError`] via [`crate::DbscoutError`]).
    pub fn insert(&mut self, point: &[f64]) -> Result<PointId> {
        match &mut self.inner {
            Inner::Hashed(e) => e.insert(point),
            Inner::CellMajor(e) => e.insert(point),
        }
    }

    /// Inserts a batch of points; returns the id of the first one (ids
    /// are consecutive).
    ///
    /// # Errors
    ///
    /// Fails on the first invalid point; earlier points of the batch
    /// remain inserted.
    pub fn extend(&mut self, store: &PointStore) -> Result<PointId> {
        let first = self.total_inserted() as PointId;
        for (_, p) in store.iter() {
            self.insert(p)?;
        }
        Ok(first)
    }

    /// Removes a live point and restores all label invariants for the
    /// remaining points; returns `false` if `id` was already removed (or
    /// never existed).
    ///
    /// Deletion is the non-monotone direction: ε-neighbors of the removed
    /// point lose one neighbor each, demoted core points stop vouching
    /// for their surroundings, and points they covered may revert to
    /// outliers. All effects are confined to the 2-hop cell neighborhood
    /// of the removed point, so the work stays constant for fixed
    /// parameters on bounded-density data.
    pub fn remove(&mut self, id: PointId) -> bool {
        match &mut self.inner {
            Inner::Hashed(e) => e.remove(id),
            Inner::CellMajor(e) => e.remove(id),
        }
    }

    /// Classifies `point` as if it were inserted, without inserting it:
    /// the answer equals "insert, then read the label" (the probe point
    /// can tip a `minPts − 1` neighbor into core, which would cover it).
    /// The point set and labels are untouched; only telemetry counters
    /// advance, hence `&mut self`.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch or non-finite coordinates.
    pub fn probe(&mut self, point: &[f64]) -> Result<PointLabel> {
        match &mut self.inner {
            Inner::Hashed(e) => e.probe(point),
            Inner::CellMajor(e) => e.probe(point),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::detect_outliers;

    fn params(eps: f64, min_pts: usize) -> DbscoutParams {
        DbscoutParams::new(eps, min_pts).unwrap()
    }

    /// Both engines, for tests that must hold on each.
    fn engines(dims: usize, p: DbscoutParams) -> Vec<(&'static str, IncrementalDbscout)> {
        vec![
            (
                "hashed",
                IncrementalDbscout::with_layout(dims, p, ExecutionLayout::Hashed, KernelKind::Auto)
                    .unwrap(),
            ),
            (
                "cell-major",
                IncrementalDbscout::with_layout(
                    dims,
                    p,
                    ExecutionLayout::CellMajor,
                    KernelKind::Auto,
                )
                .unwrap(),
            ),
        ]
    }

    #[test]
    fn single_point_is_outlier_unless_min_pts_one() {
        for (name, mut inc) in engines(2, params(1.0, 2)) {
            let id = inc.insert(&[0.0, 0.0]).unwrap();
            assert_eq!(inc.label(id), PointLabel::Outlier, "{name}");
        }
        for (name, mut inc) in engines(2, params(1.0, 1)) {
            let id = inc.insert(&[0.0, 0.0]).unwrap();
            assert_eq!(inc.label(id), PointLabel::Core, "{name}");
        }
    }

    #[test]
    fn labels_upgrade_monotonically_as_cluster_forms() {
        for (name, mut inc) in engines(2, params(1.0, 4)) {
            let first = inc.insert(&[0.0, 0.0]).unwrap();
            assert_eq!(inc.label(first), PointLabel::Outlier, "{name}");
            inc.insert(&[0.2, 0.0]).unwrap();
            inc.insert(&[0.0, 0.2]).unwrap();
            // Still below minPts = 4.
            assert_eq!(inc.label(first), PointLabel::Outlier, "{name}");
            inc.insert(&[0.2, 0.2]).unwrap();
            // Now every point has 4 neighbors: all core.
            for i in 0..4 {
                assert_eq!(inc.label(i), PointLabel::Core, "{name} point {i}");
            }
        }
    }

    #[test]
    fn newly_core_point_rescues_distant_outlier() {
        // A border point beyond the forming cluster becomes covered the
        // moment its neighbor turns core.
        for (name, mut inc) in engines(2, params(0.5, 5)) {
            let border = inc.insert(&[0.9, 0.0]).unwrap();
            for i in 0..5 {
                inc.insert(&[i as f64 * 0.1, 0.0]).unwrap();
            }
            // The chain 0.0..0.4 is core; 0.9 is within 0.5 of the core
            // at 0.4 but has only 2 neighbors.
            assert_eq!(inc.label(border), PointLabel::Covered, "{name}");
        }
    }

    #[test]
    fn matches_batch_after_every_insert() {
        // The exactness invariant, checked at every prefix, on both
        // engines.
        let pts: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [10.0, 10.0],
            [0.3, 0.1],
            [0.1, 0.3],
            [0.2, 0.2],
            [1.2, 0.0],
            [10.1, 10.1],
            [10.2, 9.9],
            [0.15, 0.15],
            [2.0, 0.2],
            [10.05, 10.05],
        ];
        let p = params(1.0, 4);
        for (name, mut inc) in engines(2, p) {
            let mut batch_store = PointStore::new(2).unwrap();
            for pt in &pts {
                inc.insert(pt).unwrap();
                batch_store.push(pt).unwrap();
                let batch = detect_outliers(&batch_store, p).unwrap();
                assert_eq!(
                    inc.labels(),
                    batch.labels.as_slice(),
                    "{name} diverged after {} inserts",
                    batch_store.len()
                );
            }
        }
    }

    #[test]
    fn from_store_equals_batch() {
        let store = PointStore::from_rows(
            2,
            (0..60).map(|i| vec![(i % 8) as f64 * 0.4, (i / 8) as f64 * 0.4]),
        )
        .unwrap();
        let p = params(1.0, 5);
        let batch = detect_outliers(&store, p).unwrap();
        for layout in [ExecutionLayout::Hashed, ExecutionLayout::CellMajor] {
            let inc =
                IncrementalDbscout::from_store_with(&store, p, layout, KernelKind::Auto).unwrap();
            assert_eq!(inc.labels(), batch.labels.as_slice(), "{layout:?}");
            assert_eq!(inc.outliers(), batch.outliers, "{layout:?}");
            assert_eq!(inc.len(), 60);
            assert_eq!(inc.layout(), layout);
        }
    }

    #[test]
    fn extend_matches_pointwise_inserts() {
        let store = PointStore::from_rows(
            2,
            (0..30).map(|i| vec![(i % 6) as f64 * 0.3, (i / 6) as f64 * 0.3]),
        )
        .unwrap();
        let p = params(1.0, 4);
        let mut batch = IncrementalDbscout::new(2, p).unwrap();
        let first = batch.extend(&store).unwrap();
        assert_eq!(first, 0);
        let pointwise = IncrementalDbscout::from_store(&store, p).unwrap();
        assert_eq!(batch.labels(), pointwise.labels());
        // Extending again starts at the next id.
        let second = batch.extend(&store).unwrap();
        assert_eq!(second, 30);
        assert_eq!(batch.len(), 60);
    }

    #[test]
    fn rejects_bad_input() {
        for (name, mut inc) in engines(2, params(1.0, 3)) {
            assert!(inc.insert(&[1.0]).is_err(), "{name}");
            assert!(inc.insert(&[f64::NAN, 0.0]).is_err(), "{name}");
            assert!(inc.probe(&[1.0]).is_err(), "{name}");
            assert!(inc.probe(&[f64::INFINITY, 0.0]).is_err(), "{name}");
            assert!(inc.is_empty(), "{name}");
        }
    }

    #[test]
    fn remove_reverts_labels() {
        // Build a minimal core configuration, then dismantle it.
        for (name, mut inc) in engines(2, params(0.5, 3)) {
            let a = inc.insert(&[0.0, 0.0]).unwrap();
            let b = inc.insert(&[0.1, 0.0]).unwrap();
            let c = inc.insert(&[0.2, 0.0]).unwrap();
            // d reaches only c (dist 0.5 exactly; a and b are too far).
            let d = inc.insert(&[0.7, 0.0]).unwrap();
            assert_eq!(inc.label(a), PointLabel::Core, "{name}");
            assert_eq!(inc.label(c), PointLabel::Core, "{name}");
            assert_eq!(inc.label(d), PointLabel::Covered, "{name}");

            // Removing the bridge point c demotes a and b (2 neighbors
            // left) and strands d entirely.
            assert!(inc.remove(c), "{name}");
            assert_eq!(inc.label(a), PointLabel::Outlier, "{name}");
            assert_eq!(inc.label(b), PointLabel::Outlier, "{name}");
            assert_eq!(inc.label(d), PointLabel::Outlier, "{name}");
            assert!(!inc.is_alive(c), "{name}");
            assert_eq!(inc.len(), 3, "{name}");
        }
    }

    #[test]
    fn remove_is_idempotent_and_checked() {
        for (name, mut inc) in engines(2, params(1.0, 2)) {
            let id = inc.insert(&[0.0, 0.0]).unwrap();
            assert!(inc.remove(id), "{name}");
            assert!(!inc.remove(id), "{name}: double remove must report false");
            assert!(!inc.remove(99), "{name}: unknown id must report false");
            assert!(inc.is_empty(), "{name}");
        }
    }

    #[test]
    fn insert_after_remove_reuses_nothing_but_works() {
        for (name, mut inc) in engines(2, params(1.0, 2)) {
            let a = inc.insert(&[0.0, 0.0]).unwrap();
            inc.remove(a);
            let b = inc.insert(&[0.0, 0.0]).unwrap();
            assert_ne!(a, b, "{name}: ids are never reused");
            assert_eq!(inc.total_inserted(), 2, "{name}");
            assert_eq!(inc.len(), 1, "{name}");
            assert_eq!(inc.outliers(), vec![b], "{name}");
        }
    }

    #[test]
    fn mixed_insert_remove_matches_batch() {
        // A scripted churn sequence; after every operation the live
        // points must carry exactly the batch labels.
        let inserts: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [0.2, 0.0],
            [0.0, 0.2],
            [0.2, 0.2],
            [1.0, 0.0],
            [5.0, 5.0],
            [5.2, 5.0],
            [5.0, 5.2],
            [0.1, 0.1],
            [5.1, 5.1],
        ];
        let p = params(0.9, 4);
        for (name, mut inc) in engines(2, p) {
            let mut ids = Vec::new();
            for pt in &inserts {
                ids.push(inc.insert(pt).unwrap());
            }
            for &victim in &[ids[1], ids[6], ids[0], ids[9]] {
                inc.remove(victim);
                // Rebuild the live subset and compare against a batch run.
                let live: Vec<u32> = (0..inc.total_inserted() as u32)
                    .filter(|&i| inc.is_alive(i))
                    .collect();
                let batch_store = inc.store().gather(&live);
                let batch = detect_outliers(&batch_store, p).unwrap();
                for (bi, &id) in live.iter().enumerate() {
                    assert_eq!(
                        inc.label(id),
                        batch.labels[bi],
                        "{name}: label of {id} diverged after removing {victim}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_points_count_individually() {
        for (name, mut inc) in engines(2, params(1.0, 3)) {
            inc.insert(&[5.0, 5.0]).unwrap();
            inc.insert(&[5.0, 5.0]).unwrap();
            assert_eq!(inc.outliers().len(), 2, "{name}");
            inc.insert(&[5.0, 5.0]).unwrap();
            // Three coincident points with minPts = 3: all core.
            assert_eq!(inc.outliers().len(), 0, "{name}");
            assert!(
                inc.labels().iter().all(|l| *l == PointLabel::Core),
                "{name}"
            );
        }
    }

    #[test]
    fn probe_equals_insert_then_label() {
        let pts: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [0.2, 0.0],
            [0.0, 0.2],
            [1.0, 1.0],
            [5.0, 5.0],
            [0.1, 0.1],
        ];
        let probes: Vec<[f64; 2]> = vec![
            [0.1, 0.0],   // would be core
            [0.9, 0.15],  // near the cluster edge
            [5.1, 5.1],   // tips a min_pts-1 neighbor into core
            [20.0, 20.0], // isolated
        ];
        let p = params(0.5, 3);
        for (name, mut inc) in engines(2, p) {
            for pt in &pts {
                inc.insert(pt).unwrap();
            }
            for q in &probes {
                let probed = inc.probe(q).unwrap();
                let mut clone = inc.clone();
                let id = clone.insert(q).unwrap();
                assert_eq!(probed, clone.label(id), "{name} probe of {q:?}");
                // The probe itself must not have changed any state.
                assert_eq!(inc.len(), pts.len(), "{name}");
            }
        }
    }

    #[test]
    fn engines_agree_and_cell_major_counts_kernel_work() {
        let p = params(0.7, 3);
        let pts: Vec<[f64; 2]> = (0..40)
            .map(|i| [((i * 13) % 17) as f64 * 0.25, ((i * 5) % 11) as f64 * 0.25])
            .collect();
        let mut engines = engines(2, p);
        for (_, inc) in engines.iter_mut() {
            for pt in &pts {
                inc.insert(pt).unwrap();
            }
            for id in [3u32, 17, 31] {
                inc.remove(id);
            }
        }
        let (_, hashed) = &engines[0];
        let (_, cm) = &engines[1];
        assert_eq!(hashed.labels(), cm.labels());
        assert_eq!(hashed.outliers(), cm.outliers());
        let counters = cm.kernel_counters();
        assert!(counters.distance_evals > 0);
        assert!(counters.cells_visited > 0);
        assert_eq!(cm.kernel(), KernelKind::Unrolled);
        assert_eq!(hashed.kernel(), KernelKind::Scalar);
        assert_eq!(hashed.rebuilds(), 0);
        // Snapshot cell statistics agree between the engines.
        let hs = hashed.snapshot();
        let cs = cm.snapshot();
        assert_eq!(hs.stats.num_cells, cs.stats.num_cells);
        assert_eq!(hs.stats.dense_cells, cs.stats.dense_cells);
        assert_eq!(hs.stats.core_cells, cs.stats.core_cells);
        assert_eq!(hs.labels, cs.labels);
    }
}
