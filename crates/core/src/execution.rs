//! The unified execution configuration.
//!
//! Every knob that decides *how* a detection runs — never *what* it
//! returns — lives in one [`ExecutionConfig`] value: worker threads,
//! physical layout, distance kernel, process-worker count, and the
//! deterministic schedule seed. The CLI maps its `--threads`,
//! `--layout`, `--kernel`, `--workers`, and `--schedule-seed` flags
//! into this struct in exactly one place, and
//! [`crate::DetectorBuilder::execution`] consumes it; the per-field
//! builder methods remain as thin shims over the same state.
//!
//! The struct is `#[non_exhaustive]`: construct it with
//! [`ExecutionConfig::default`] (or `new`) plus the chainable setters,
//! so future knobs can be added without breaking callers.

use dbscout_spatial::KernelKind;

use crate::native::ExecutionLayout;

/// How a detection executes: threads, layout, kernel, workers, seed.
///
/// All fields are observability/performance knobs — a property suite
/// pins that no combination changes labels or kernel-counter totals.
///
/// ```
/// use dbscout_core::{DetectorBuilder, DbscoutParams, ExecutionConfig, ExecutionLayout};
/// use dbscout_spatial::KernelKind;
///
/// let cfg = ExecutionConfig::new()
///     .with_threads(4)
///     .with_layout(ExecutionLayout::CellMajor)
///     .with_kernel(KernelKind::Unrolled);
/// let params = DbscoutParams::new(0.5, 5).unwrap();
/// let detector = DetectorBuilder::new(params).execution(cfg).build_native();
/// assert_eq!(detector.threads(), 4);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecutionConfig {
    /// Worker threads for the native engine; `0` means "all available
    /// cores" (the CLI convention).
    pub threads: usize,
    /// Physical layout of the phase-3/5 scans.
    pub layout: ExecutionLayout,
    /// Distance kernel for the cell-major hot loops. The hashed layout
    /// has no lane-unrolled path and always runs scalar — see
    /// [`Self::resolved_kernel`].
    pub kernel: KernelKind,
    /// Worker processes for the process backend / distributed engine;
    /// `0` means the backend's default.
    pub workers: usize,
    /// Seed for the dataflow scheduler's deterministic task order;
    /// `None` keeps the default schedule.
    pub schedule_seed: Option<u64>,
}

impl ExecutionConfig {
    /// The default configuration: all cores, cell-major layout, `Auto`
    /// kernel, default worker count, default schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the native engine's worker-thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the execution layout.
    pub fn with_layout(mut self, layout: ExecutionLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the distance kernel.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the process/distributed worker count (`0` = backend default).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the deterministic schedule seed.
    pub fn with_schedule_seed(mut self, seed: Option<u64>) -> Self {
        self.schedule_seed = seed;
        self
    }

    /// The concrete kernel this configuration actually runs: `Auto`
    /// resolves to the build's best kernel, and the hashed layout —
    /// which has no lane-unrolled scan — always reports `Scalar`.
    /// This is the value the CLI echoes into the run report.
    pub fn resolved_kernel(&self) -> KernelKind {
        match self.layout {
            ExecutionLayout::Hashed => KernelKind::Scalar,
            ExecutionLayout::CellMajor => self.kernel.resolve(),
        }
    }

    /// The thread count this configuration resolves to at run time
    /// (`0` becomes the machine's available parallelism).
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_auto_on_all_cores() {
        let cfg = ExecutionConfig::new();
        assert_eq!(cfg.threads, 0);
        assert_eq!(cfg.layout, ExecutionLayout::CellMajor);
        assert_eq!(cfg.kernel, KernelKind::Auto);
        assert_eq!(cfg.workers, 0);
        assert_eq!(cfg.schedule_seed, None);
        assert!(cfg.resolved_threads() >= 1);
    }

    #[test]
    fn setters_chain_and_resolve() {
        let cfg = ExecutionConfig::new()
            .with_threads(3)
            .with_layout(ExecutionLayout::CellMajor)
            .with_kernel(KernelKind::Auto)
            .with_workers(2)
            .with_schedule_seed(Some(7));
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.resolved_threads(), 3);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.schedule_seed, Some(7));
        // Auto resolves to the unrolled kernel on the cell-major layout…
        assert_eq!(cfg.resolved_kernel(), KernelKind::Unrolled);
        // …but the hashed layout has no unrolled path: always scalar.
        let hashed = cfg.with_layout(ExecutionLayout::Hashed);
        assert_eq!(hashed.resolved_kernel(), KernelKind::Scalar);
        let explicit = cfg.with_kernel(KernelKind::Scalar);
        assert_eq!(explicit.resolved_kernel(), KernelKind::Scalar);
    }
}
