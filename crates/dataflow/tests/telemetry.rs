//! Telemetry integration tests: exact per-stage accounting under
//! speculation (the metric-skew regression) and task-span emission
//! through an installed recorder.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use std::sync::Arc;
use std::time::Duration;

use dbscout_dataflow::{ExecutionContext, FaultKind, FaultPlan, SpeculationConfig};
use dbscout_telemetry::{ArgValue, SpanKind, TraceCollector};

fn straggler_ctx(recorder: Option<Arc<TraceCollector>>) -> Arc<ExecutionContext> {
    // Partition 6's first attempt is pinned for 5 s; with speculation on,
    // an idle worker duplicates it and the duplicate wins.
    let plan = FaultPlan::builder(0)
        .inject_in_stages(
            Some("map_partitions"),
            6,
            0,
            FaultKind::Delay(Duration::from_secs(5)),
        )
        .build();
    let mut builder = ExecutionContext::builder()
        .workers(4)
        .speculation(SpeculationConfig {
            min_completed: 3,
            quantile: 0.5,
            multiplier: 2.0,
            min_runtime: Duration::from_millis(20),
        })
        .fault_plan(plan);
    if let Some(rec) = recorder {
        builder = builder.recorder(rec);
    }
    builder.build()
}

/// Regression test for speculative-execution metric skew: the losing
/// attempt of a speculated task must not inflate task counts, record
/// volumes, or duration percentiles. Every count below is exact.
#[test]
fn speculative_loser_is_not_double_counted() {
    let ctx = straggler_ctx(None);
    let data = ctx.parallelize((0u64..4000).collect::<Vec<_>>(), 8);
    let out = data.map(|&x: &u64| x + 1).unwrap();
    assert_eq!(out.count(), 4000);

    let m = ctx.metrics().snapshot();
    assert_eq!(m.stages, 1);
    assert_eq!(m.tasks, 8, "exactly one completed task per partition");
    assert_eq!(m.records_in, 4000, "input records counted once");
    assert_eq!(m.records_out, 4000, "output records counted once");
    assert_eq!(m.speculative_launches, 1, "one straggler, one duplicate");
    assert_eq!(m.speculative_wins, 1, "the duplicate beat the 5s delay");
    assert_eq!(m.injected_faults, 1);
    assert_eq!(m.task_retries, 0, "a delay is a straggler, not a failure");

    let records = ctx.metrics().stage_records();
    assert_eq!(records.len(), 1);
    let stage = &records[0];
    assert_eq!(stage.label, "map_partitions");
    assert_eq!(stage.tasks, 8);
    assert_eq!(
        stage.task_durations.count(),
        8,
        "histogram holds winners only — the superseded loser is excluded"
    );
}

#[test]
fn task_spans_record_partition_attempt_and_outcome() {
    let collector = Arc::new(TraceCollector::new());
    let ctx = straggler_ctx(Some(Arc::clone(&collector)));
    let data = ctx.parallelize((0u64..4000).collect::<Vec<_>>(), 8);
    let _ = data.map(|&x: &u64| x + 1).unwrap();

    let spans = collector.spans();
    let tasks: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Task).collect();
    // 8 winning attempts plus the superseded straggler attempt.
    assert_eq!(tasks.len(), 9, "spans: {spans:#?}");
    let arg = |s: &dbscout_telemetry::Span, key: &str| {
        s.args
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    };
    let successes = tasks
        .iter()
        .filter(|s| arg(s, "outcome") == Some(ArgValue::Str("success".into())))
        .count();
    let superseded: Vec<_> = tasks
        .iter()
        .filter(|s| arg(s, "outcome") == Some(ArgValue::Str("superseded".into())))
        .collect();
    assert_eq!(successes, 8);
    assert_eq!(superseded.len(), 1);
    assert_eq!(
        arg(superseded[0], "partition"),
        Some(ArgValue::U64(6)),
        "the delayed partition's original attempt is the superseded one"
    );
    for s in &tasks {
        assert_eq!(s.name, "map_partitions");
        assert!(arg(s, "attempt").is_some());
        assert!(arg(s, "speculative").is_some());
        assert!(s.lane >= 1, "task lanes are 1-based (0 is the driver)");
    }
    // Exactly one attempt across the stage ran speculatively and won.
    let speculative_wins = tasks
        .iter()
        .filter(|s| {
            arg(s, "speculative") == Some(ArgValue::Bool(true))
                && arg(s, "outcome") == Some(ArgValue::Str("success".into()))
        })
        .count();
    assert_eq!(speculative_wins, 1);
}

#[test]
fn retried_attempts_emit_retry_then_success_spans() {
    let collector = Arc::new(TraceCollector::new());
    let plan = FaultPlan::builder(0)
        .inject_in_stages(Some("map_partitions"), 2, 0, FaultKind::Transient)
        .build();
    let ctx = ExecutionContext::builder()
        .workers(4)
        .max_task_retries(2)
        .fault_plan(plan)
        .recorder(Arc::clone(&collector) as Arc<dyn dbscout_telemetry::Recorder>)
        .build();
    let data = ctx.parallelize((0u64..400).collect::<Vec<_>>(), 4);
    let _ = data.map(|&x: &u64| x).unwrap();

    let spans = collector.spans();
    let outcomes: Vec<String> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Task)
        .filter_map(|s| {
            s.args.iter().find_map(|(k, v)| match (k, v) {
                (&"outcome", ArgValue::Str(o)) => Some(o.clone()),
                _ => None,
            })
        })
        .collect();
    assert_eq!(
        outcomes.iter().filter(|o| *o == "retried").count(),
        1,
        "outcomes: {outcomes:?}"
    );
    assert_eq!(outcomes.iter().filter(|o| *o == "success").count(), 4);
}

#[test]
fn stage_spans_carry_attached_volumes() {
    let collector = Arc::new(TraceCollector::new());
    let ctx = ExecutionContext::builder()
        .workers(2)
        .recorder(Arc::clone(&collector) as Arc<dyn dbscout_telemetry::Recorder>)
        .build();
    let data = ctx.parallelize((0u64..100).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4);
    let _ = data.reduce_by_key(|a, b| a + b).unwrap();
    ctx.metrics().emit_stage_spans(collector.as_ref());

    let spans = collector.spans();
    let stage_spans: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Stage).collect();
    assert_eq!(stage_spans.len(), 2, "map + reduce stages");
    assert_eq!(stage_spans[0].name, "reduce_by_key[map]");
    assert_eq!(stage_spans[1].name, "reduce_by_key[reduce]");
    let shuffle = stage_spans[0]
        .args
        .iter()
        .find(|(k, _)| *k == "shuffle_records")
        .map(|(_, v)| v.clone());
    // 4 partitions × 5 distinct keys after map-side combine.
    assert_eq!(shuffle, Some(ArgValue::U64(20)));
    let bytes = stage_spans[0]
        .args
        .iter()
        .find(|(k, _)| *k == "shuffle_bytes")
        .map(|(_, v)| v.clone());
    assert_eq!(
        bytes,
        Some(ArgValue::U64(20 * std::mem::size_of::<(u64, u64)>() as u64))
    );
}
