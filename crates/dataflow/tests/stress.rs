//! Executor stress suite.
//!
//! The CI `concurrency` job runs this under ThreadSanitizer
//! (`RUSTFLAGS=-Zsanitizer=thread`), where the point is the *absence of
//! data-race reports* while many workers hammer the shared queue,
//! partition states, and metrics. Natively it doubles as a regression
//! suite for panic recovery: a panicking task must fail its stage
//! without poisoning any lock or wedging the context
//! (`executor::lock_unpoisoned` is the mechanism under test).

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use std::sync::Arc;

use dbscout_dataflow::{EngineError, ExecutionContext, FaultKind, FaultPlan};

/// A panicking task fails its stage cleanly: no deadlock, no poisoned
/// mutex, and the same context keeps running later stages. A worker
/// thread unwinding mid-stage is exactly how `std::sync::Mutex` gets
/// poisoned — every lock the engine takes must recover.
#[test]
fn panicking_task_does_not_poison_or_wedge_the_context() {
    let ctx = ExecutionContext::builder()
        .workers(4)
        .max_task_retries(0)
        .build();

    let ds = ctx.parallelize((0u32..64).collect::<Vec<_>>(), 8);
    let err = ds
        .map(|&x: &u32| {
            assert!(x != 20, "injected panic in partition 2");
            u64::from(x)
        })
        .unwrap_err();
    match err {
        EngineError::TaskFailed { partition, .. } => assert_eq!(partition, 2),
        other => panic!("unexpected error: {other:?}"),
    }

    // The context — its work queue, partition states, stage label, and
    // metrics log (all mutex-guarded, all locked by the panicking
    // worker's peers) — must still be fully usable.
    let sum: u64 = ds
        .map(|&x: &u32| u64::from(x))
        .unwrap()
        .collect()
        .unwrap()
        .into_iter()
        .sum();
    assert_eq!(sum, (0..64).sum::<u64>());
    let snap = ctx.metrics().snapshot();
    assert!(snap.stages >= 2, "both stages recorded: {snap:?}");
}

/// Panics within the retry budget are absorbed: the attempt is re-queued
/// and the stage still produces the right answer.
#[test]
fn panics_within_the_retry_budget_are_absorbed() {
    let plan = FaultPlan::builder(0)
        .inject(3, 0, FaultKind::Panic)
        .inject(5, 0, FaultKind::Panic)
        .build();
    let ctx = ExecutionContext::builder()
        .workers(4)
        .max_task_retries(1)
        .fault_plan(plan)
        .build();
    let out = ctx
        .parallelize((0u64..800).collect::<Vec<_>>(), 8)
        .map(|&x: &u64| x * 2)
        .unwrap()
        .collect_sorted()
        .unwrap();
    assert_eq!(out, (0u64..800).map(|x| x * 2).collect::<Vec<_>>());
    assert_eq!(ctx.metrics().snapshot().task_retries, 2);
}

/// Many threads drive shuffle jobs through one shared context at once.
/// Cross-thread traffic covers the work queue, per-partition state
/// mutexes, the settled counter, stage counters, and the metrics log —
/// the surface TSan watches for races.
#[test]
fn concurrent_jobs_on_a_shared_context_race_nothing() {
    let ctx = ExecutionContext::builder()
        .workers(4)
        .default_partitions(8)
        .build();

    let expected: Vec<(u64, u64)> = {
        let data = ctx.parallelize((0u64..1200).collect::<Vec<_>>(), 8);
        data.map(|&x: &u64| (x % 31, x))
            .unwrap()
            .reduce_by_key(|a, b| a.wrapping_add(b))
            .unwrap()
            .collect_sorted()
            .unwrap()
    };

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let ctx = Arc::clone(&ctx);
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..3 {
                    let got = ctx
                        .parallelize((0u64..1200).collect::<Vec<_>>(), 8)
                        .map(|&x: &u64| (x % 31, x))
                        .unwrap()
                        .reduce_by_key(|a, b| a.wrapping_add(b))
                        .unwrap()
                        .collect_sorted()
                        .unwrap();
                    assert_eq!(&got, expected);
                }
            });
        }
    });
}

/// The chaos scheduler under concurrent load: perturbed pop order with
/// several workers, retries, and injected faults at once — the worst
/// interleaving soup we can brew deterministically.
#[test]
fn chaos_schedule_with_faults_under_load_stays_correct() {
    let expected: Vec<u64> = (0u64..600).map(|x| x / 3).collect();
    for seed in [1u64, 42, 0xDBC0] {
        let plan = FaultPlan::builder(seed)
            .inject(1, 0, FaultKind::Transient)
            .inject(6, 0, FaultKind::Panic)
            .build();
        let ctx = ExecutionContext::builder()
            .workers(8)
            .max_task_retries(2)
            .fault_plan(plan)
            .schedule_chaos(seed)
            .build();
        let got = ctx
            .parallelize((0u64..600).collect::<Vec<_>>(), 12)
            .map(|&x: &u64| x / 3)
            .unwrap()
            .collect_sorted()
            .unwrap();
        assert_eq!(got, expected, "seed {seed:#x}");
    }
}
