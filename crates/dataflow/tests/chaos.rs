//! Seeded chaos tests for the fault-tolerant executor (the ISSUE's
//! acceptance scenarios): injected faults within the retry budget leave
//! results byte-identical, exhausted budgets fail loudly with the right
//! partition, and injected stragglers trigger speculation without
//! changing the answer.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use std::sync::Arc;
use std::time::Duration;

use dbscout_dataflow::{EngineError, ExecutionContext, FaultKind, FaultPlan, SpeculationConfig};

/// Seeds every test sweeps, plus an optional CI-provided extra
/// (`DBSCOUT_CHAOS_SEED`, set by the chaos job's matrix).
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![1, 7, 42, 0xDBC0];
    if let Ok(s) = std::env::var("DBSCOUT_CHAOS_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            seeds.push(seed);
        }
    }
    seeds
}

/// A two-stage job (map + shuffle/reduce) whose output is a stable
/// sorted vector, run on the given context.
fn run_job(ctx: &Arc<ExecutionContext>) -> Vec<(u64, u64)> {
    let data = ctx.parallelize((0u64..4000).collect::<Vec<_>>(), 8);
    data.map(|&x: &u64| (x % 97, x))
        .unwrap()
        .reduce_by_key(|a, b| a.wrapping_add(b))
        .unwrap()
        .collect_sorted()
        .unwrap()
}

#[test]
fn transient_faults_on_three_partitions_leave_output_identical() {
    let clean = ExecutionContext::builder().workers(4).build();
    let expected = run_job(&clean);

    // Scenario (a): transient faults on three partitions of the map
    // stage; the retry budget (2) absorbs all of them.
    let plan = FaultPlan::builder(0)
        .inject_in_stages(Some("map_partitions"), 0, 0, FaultKind::Transient)
        .inject_in_stages(Some("map_partitions"), 2, 0, FaultKind::Transient)
        .inject_in_stages(Some("map_partitions"), 5, 0, FaultKind::Transient)
        .build();
    let ctx = ExecutionContext::builder()
        .workers(4)
        .max_task_retries(2)
        .fault_plan(plan)
        .build();
    assert_eq!(run_job(&ctx), expected);

    let m = ctx.metrics().snapshot();
    assert_eq!(m.injected_faults, 3, "exactly the three scripted faults");
    assert_eq!(
        m.task_retries, 3,
        "every injected fault costs exactly one retry"
    );
    assert_eq!(m.speculative_launches, 0);
}

#[test]
fn zero_retry_budget_fails_naming_the_first_faulted_partition() {
    // Scenario (b): the same plan with `max_task_retries = 0` must fail
    // and name the lowest faulted partition.
    let plan = FaultPlan::builder(0)
        .inject_in_stages(Some("map_partitions"), 0, 0, FaultKind::Transient)
        .inject_in_stages(Some("map_partitions"), 2, 0, FaultKind::Transient)
        .inject_in_stages(Some("map_partitions"), 5, 0, FaultKind::Transient)
        .build();
    let ctx = ExecutionContext::builder()
        .workers(4)
        .max_task_retries(0)
        .fault_plan(plan)
        .build();
    let data = ctx.parallelize((0u64..4000).collect::<Vec<_>>(), 8);
    let err = data.map(|&x: &u64| x).unwrap_err();
    match err {
        EngineError::TaskFailed {
            stage,
            partition,
            attempts,
            causes,
        } => {
            assert_eq!(partition, 0, "lowest faulted partition is reported");
            assert_eq!(attempts, 1);
            assert!(stage.contains("map"), "stage: {stage}");
            assert_eq!(causes.len(), 1);
            assert!(causes[0].contains("transient"), "cause: {:?}", causes[0]);
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn injected_straggler_triggers_speculation_without_changing_the_result() {
    let clean = ExecutionContext::builder().workers(4).build();
    let expected = run_job(&clean);

    // Scenario (c): a seeded delay pins one map task; an idle worker
    // duplicates it and the duplicate's result wins.
    let plan = FaultPlan::builder(0)
        .inject_in_stages(
            Some("map_partitions"),
            6,
            0,
            FaultKind::Delay(Duration::from_secs(5)),
        )
        .build();
    let ctx = ExecutionContext::builder()
        .workers(4)
        .speculation(SpeculationConfig {
            min_completed: 3,
            quantile: 0.5,
            multiplier: 2.0,
            min_runtime: Duration::from_millis(20),
        })
        .fault_plan(plan)
        .build();
    let t = std::time::Instant::now();
    assert_eq!(run_job(&ctx), expected);
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "speculation must beat the 5s straggler, took {:?}",
        t.elapsed()
    );

    let m = ctx.metrics().snapshot();
    assert!(m.speculative_launches >= 1, "{m:?}");
    assert!(m.speculative_wins >= 1, "{m:?}");
    assert_eq!(m.task_retries, 0, "a delay is a straggler, not a failure");
}

#[test]
fn exhausted_retries_report_stage_partition_and_attempts() {
    let plan = FaultPlan::builder(9)
        .inject_in_stages(Some("core-point pass"), 3, 0, FaultKind::Transient)
        .inject_in_stages(Some("core-point pass"), 3, 1, FaultKind::Panic)
        .inject_in_stages(Some("core-point pass"), 3, 2, FaultKind::Transient)
        .build();
    let ctx = ExecutionContext::builder()
        .workers(2)
        .max_task_retries(2)
        .fault_plan(plan)
        .build();
    ctx.set_stage("core-point pass");
    let data = ctx.parallelize((0u64..800).collect::<Vec<_>>(), 8);
    let err = data.map(|&x: &u64| x + 1).unwrap_err();
    match err {
        EngineError::TaskFailed {
            stage,
            partition,
            attempts,
            causes,
        } => {
            assert!(stage.contains("core-point pass"), "stage: {stage}");
            assert_eq!(partition, 3);
            assert_eq!(attempts, 3, "retry budget 2 means three attempts");
            assert_eq!(causes.len(), 3);
            // Attempt numbers are 1-based in messages.
            for (i, cause) in causes.iter().enumerate() {
                assert!(
                    cause.starts_with(&format!("attempt {}:", i + 1)),
                    "cause: {cause:?}"
                );
            }
            assert!(causes[1].contains("injected panic"), "{:?}", causes[1]);
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn seeded_faults_within_budget_never_change_the_output() {
    // Property: for any seed, a plan injecting at most 2 faults per task
    // under a retry budget of 3 yields output identical to the fault-free
    // run, and the retry counter equals the injected-fault counter
    // exactly (every injected fault costs one retry, nothing else fails).
    let clean = ExecutionContext::builder().workers(4).build();
    let expected = run_job(&clean);

    for seed in chaos_seeds() {
        let plan = FaultPlan::builder(seed).max_faults_per_task(2).build();
        let ctx = ExecutionContext::builder()
            .workers(4)
            .max_task_retries(3)
            .fault_plan(plan)
            .build();
        assert_eq!(run_job(&ctx), expected, "seed {seed} changed the output");

        let m = ctx.metrics().snapshot();
        assert_eq!(
            m.task_retries, m.injected_faults,
            "seed {seed}: retries must match injected faults exactly"
        );
        assert!(
            m.injected_faults > 0,
            "seed {seed} injected nothing — the property is vacuous"
        );
    }
}
