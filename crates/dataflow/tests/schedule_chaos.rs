//! Schedule-exploration tests: engine output must be a pure function of
//! the job, never of the task interleaving.
//!
//! [`ExecutionContextBuilder::schedule_chaos`] perturbs work-queue pop
//! order with a seeded rng, so each seed executes the same job under a
//! different (but reproducible) schedule. Sweeping 32 seeds at 1/2/4/8
//! workers and asserting the *unsorted* results byte-identical catches
//! any dependence on scheduling — e.g. a reduce-side hash map drained in
//! insertion order would differ between schedules and fail here.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use std::sync::Arc;

use dbscout_dataflow::{ExecutionContext, MetricsSnapshot};

/// 32 schedule seeds, spread by a golden-ratio stride from a base the CI
/// matrix can vary via `DBSCOUT_CHAOS_SEED`.
fn schedule_seeds() -> Vec<u64> {
    let base = std::env::var("DBSCOUT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0xDBC0);
    (0..32u64)
        .map(|i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect()
}

/// One run's complete observable surface: every collected result
/// **unsorted** (partition layout and in-partition order included), plus
/// the schedule-independent engine counters.
#[derive(Debug, PartialEq)]
struct JobOutput {
    sums: Vec<(u64, u64)>,
    group_sizes: Vec<(u64, usize)>,
    distinct: Vec<u64>,
    joined: Vec<(u64, (u64, u64))>,
    metrics: MetricsSnapshot,
}

/// A shuffle-heavy job exercising every canonicalized reduce path:
/// `reduce_by_key`, `group_by_key`, `distinct`, and `join`.
fn run_job(ctx: &Arc<ExecutionContext>) -> JobOutput {
    let nums = ctx.parallelize((0u64..3000).collect::<Vec<_>>(), 8);
    let pairs = nums.map(|&x: &u64| (x % 101, x)).unwrap();
    let sums = pairs.reduce_by_key(|a, b| a.wrapping_add(b)).unwrap();
    let counts = pairs.count_by_key().unwrap();
    JobOutput {
        group_sizes: pairs
            .group_by_key()
            .unwrap()
            .map(|(k, vs): &(u64, Vec<u64>)| (*k, vs.len()))
            .unwrap()
            .collect()
            .unwrap(),
        distinct: nums
            .map(|&x: &u64| x % 17)
            .unwrap()
            .distinct()
            .unwrap()
            .collect()
            .unwrap(),
        joined: sums.join(&counts).unwrap().collect().unwrap(),
        sums: sums.collect().unwrap(),
        metrics: ctx.metrics().snapshot(),
    }
}

#[test]
fn results_and_metrics_are_identical_across_32_schedules() {
    // Baseline: one worker, FIFO queue — the fully sequential schedule.
    // `default_partitions` is pinned so the *job shape* (shuffle
    // partition counts, and with them the stage/task tallies) is the
    // same at every worker count; only the schedule varies.
    let baseline = run_job(
        &ExecutionContext::builder()
            .workers(1)
            .default_partitions(8)
            .build(),
    );

    for workers in [1usize, 2, 4, 8] {
        for seed in schedule_seeds() {
            let ctx = ExecutionContext::builder()
                .workers(workers)
                .default_partitions(8)
                .schedule_chaos(seed)
                .build();
            let out = run_job(&ctx);
            assert_eq!(
                out, baseline,
                "schedule-dependent output at workers={workers} seed={seed:#x}"
            );
        }
    }
}

#[test]
fn same_seed_same_schedule_is_reproducible() {
    // The perturbation itself must be deterministic: two contexts with
    // the same seed and worker count agree on everything observable.
    let a = run_job(
        &ExecutionContext::builder()
            .workers(4)
            .default_partitions(8)
            .schedule_chaos(7)
            .build(),
    );
    let b = run_job(
        &ExecutionContext::builder()
            .workers(4)
            .default_partitions(8)
            .schedule_chaos(7)
            .build(),
    );
    assert_eq!(a, b);
}
