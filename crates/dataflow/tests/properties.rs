//! Property-based tests: the engine's shuffled operations must agree with
//! simple sequential reference implementations for any data and any
//! partitioning.

use std::collections::HashMap;

use dbscout_dataflow::ExecutionContext;
use proptest::prelude::*;

fn ctx(workers: usize) -> std::sync::Arc<ExecutionContext> {
    ExecutionContext::builder()
        .workers(workers)
        .default_partitions(4)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduce_by_key_equals_fold(
        records in prop::collection::vec((0u8..20, -1000i64..1000), 0..300),
        parts in 1usize..12,
        workers in 1usize..6,
    ) {
        let ctx = ctx(workers);
        let mut expected: HashMap<u8, i64> = HashMap::new();
        for &(k, v) in &records {
            *expected.entry(k).or_insert(0) += v;
        }
        let ds = ctx.parallelize(records, parts);
        let got = ds.reduce_by_key(|a, b| a + b).unwrap().collect_as_map().unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (k, v) in expected {
            prop_assert_eq!(got[&k], v);
        }
    }

    #[test]
    fn join_equals_nested_loop(
        left in prop::collection::vec((0u8..10, 0u16..100), 0..60),
        right in prop::collection::vec((0u8..10, 0u16..100), 0..60),
        parts in 1usize..8,
    ) {
        let ctx = ctx(4);
        let mut expected: Vec<(u8, (u16, u16))> = Vec::new();
        for &(k, v) in &left {
            for &(k2, w) in &right {
                if k == k2 {
                    expected.push((k, (v, w)));
                }
            }
        }
        expected.sort_unstable();
        let l = ctx.parallelize(left, parts);
        let r = ctx.parallelize(right, parts);
        let mut got = l.join(&r).unwrap().collect().unwrap();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn group_by_key_preserves_multiset(
        records in prop::collection::vec((0u8..8, 0u32..50), 0..200),
        parts in 1usize..10,
    ) {
        let ctx = ctx(4);
        let mut expected: HashMap<u8, Vec<u32>> = HashMap::new();
        for &(k, v) in &records {
            expected.entry(k).or_default().push(v);
        }
        for vs in expected.values_mut() {
            vs.sort_unstable();
        }
        let ds = ctx.parallelize(records, parts);
        let mut got = ds.group_by_key().unwrap().collect_as_map().unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (k, vs) in got.iter_mut() {
            vs.sort_unstable();
            prop_assert_eq!(&*vs, &expected[k]);
        }
    }

    #[test]
    fn union_count_is_sum(
        a in prop::collection::vec(0i32..100, 0..100),
        b in prop::collection::vec(0i32..100, 0..100),
        pa in 1usize..6,
        pb in 1usize..6,
    ) {
        let ctx = ctx(2);
        let da = ctx.parallelize(a.clone(), pa);
        let db = ctx.parallelize(b.clone(), pb);
        let u = da.union(&db).unwrap();
        prop_assert_eq!(u.count(), a.len() + b.len());
        let mut got = u.collect().unwrap();
        let mut expected = a;
        expected.extend(b);
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn repartition_preserves_multiset(
        data in prop::collection::vec(0u64..1000, 0..200),
        from in 1usize..8,
        to in 1usize..8,
    ) {
        let ctx = ctx(3);
        let ds = ctx.parallelize(data.clone(), from);
        let rp = ds.repartition(to).unwrap();
        prop_assert_eq!(rp.num_partitions(), to);
        let mut got = rp.collect().unwrap();
        let mut expected = data;
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn flat_map_then_count(
        data in prop::collection::vec(0usize..5, 0..100),
        parts in 1usize..6,
    ) {
        let ctx = ctx(4);
        let expected: usize = data.iter().sum();
        let ds = ctx.parallelize(data, parts);
        let out = ds.flat_map(|&n| std::iter::repeat_n((), n)).unwrap();
        prop_assert_eq!(out.count(), expected);
    }

    #[test]
    fn workers_do_not_change_results(
        records in prop::collection::vec((0u8..6, 1u64..100), 1..150),
        parts in 1usize..8,
    ) {
        let mut reference = None;
        for workers in [1usize, 2, 8] {
            let ctx = ctx(workers);
            let ds = ctx.parallelize(records.clone(), parts);
            let mut got = ds
                .reduce_by_key(|a, b| a.max(b))
                .unwrap()
                .collect()
                .unwrap();
            got.sort_unstable();
            match &reference {
                None => reference = Some(got),
                Some(r) => prop_assert_eq!(&got, r),
            }
        }
    }
}
