//! Randomized property tests: the engine's shuffled operations must agree
//! with simple sequential reference implementations for any data and any
//! partitioning. Cases are drawn from a seeded [`dbscout_rng::Rng`] so
//! every run sweeps the same reproducible input space.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use std::collections::HashMap;

use dbscout_dataflow::ExecutionContext;
use dbscout_rng::Rng;

fn ctx(workers: usize) -> std::sync::Arc<ExecutionContext> {
    ExecutionContext::builder()
        .workers(workers)
        .default_partitions(4)
        .build()
}

fn keyed_records(rng: &mut Rng, max_n: usize, key_space: u8) -> Vec<(u8, i64)> {
    let n = rng.gen_range(0..max_n);
    (0..n)
        .map(|_| (rng.gen_range(0..key_space), rng.gen_range(-1000i64..1000)))
        .collect()
}

#[test]
fn reduce_by_key_equals_fold() {
    let mut rng = Rng::seed_from_u64(0xB001);
    for _ in 0..64 {
        let records = keyed_records(&mut rng, 300, 20);
        let parts = rng.gen_range(1usize..12);
        let workers = rng.gen_range(1usize..6);
        let ctx = ctx(workers);
        let mut expected: HashMap<u8, i64> = HashMap::new();
        for &(k, v) in &records {
            *expected.entry(k).or_insert(0) += v;
        }
        let ds = ctx.parallelize(records, parts);
        let got = ds
            .reduce_by_key(|a, b| a + b)
            .unwrap()
            .collect_as_map()
            .unwrap();
        assert_eq!(got.len(), expected.len());
        for (k, v) in expected {
            assert_eq!(got[&k], v);
        }
    }
}

#[test]
fn join_equals_nested_loop() {
    let mut rng = Rng::seed_from_u64(0xB002);
    for _ in 0..64 {
        let n_left = rng.gen_range(0usize..60);
        let n_right = rng.gen_range(0usize..60);
        let left: Vec<(u8, u16)> = (0..n_left)
            .map(|_| (rng.gen_range(0u8..10), rng.gen_range(0u16..100)))
            .collect();
        let right: Vec<(u8, u16)> = (0..n_right)
            .map(|_| (rng.gen_range(0u8..10), rng.gen_range(0u16..100)))
            .collect();
        let parts = rng.gen_range(1usize..8);
        let ctx = ctx(4);
        let mut expected: Vec<(u8, (u16, u16))> = Vec::new();
        for &(k, v) in &left {
            for &(k2, w) in &right {
                if k == k2 {
                    expected.push((k, (v, w)));
                }
            }
        }
        expected.sort_unstable();
        let l = ctx.parallelize(left, parts);
        let r = ctx.parallelize(right, parts);
        let mut got = l.join(&r).unwrap().collect().unwrap();
        got.sort_unstable();
        assert_eq!(got, expected);
    }
}

#[test]
fn group_by_key_preserves_multiset() {
    let mut rng = Rng::seed_from_u64(0xB003);
    for _ in 0..64 {
        let n = rng.gen_range(0usize..200);
        let records: Vec<(u8, u32)> = (0..n)
            .map(|_| (rng.gen_range(0u8..8), rng.gen_range(0u32..50)))
            .collect();
        let parts = rng.gen_range(1usize..10);
        let ctx = ctx(4);
        let mut expected: HashMap<u8, Vec<u32>> = HashMap::new();
        for &(k, v) in &records {
            expected.entry(k).or_default().push(v);
        }
        for vs in expected.values_mut() {
            vs.sort_unstable();
        }
        let ds = ctx.parallelize(records, parts);
        let mut got = ds.group_by_key().unwrap().collect_as_map().unwrap();
        assert_eq!(got.len(), expected.len());
        for (k, vs) in got.iter_mut() {
            vs.sort_unstable();
            assert_eq!(&*vs, &expected[k]);
        }
    }
}

#[test]
fn union_count_is_sum() {
    let mut rng = Rng::seed_from_u64(0xB004);
    for _ in 0..64 {
        let a: Vec<i32> = (0..rng.gen_range(0usize..100))
            .map(|_| rng.gen_range(0i32..100))
            .collect();
        let b: Vec<i32> = (0..rng.gen_range(0usize..100))
            .map(|_| rng.gen_range(0i32..100))
            .collect();
        let pa = rng.gen_range(1usize..6);
        let pb = rng.gen_range(1usize..6);
        let ctx = ctx(2);
        let da = ctx.parallelize(a.clone(), pa);
        let db = ctx.parallelize(b.clone(), pb);
        let u = da.union(&db).unwrap();
        assert_eq!(u.count(), a.len() + b.len());
        let mut got = u.collect().unwrap();
        let mut expected = a;
        expected.extend(b);
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

#[test]
fn repartition_preserves_multiset() {
    let mut rng = Rng::seed_from_u64(0xB005);
    for _ in 0..64 {
        let data: Vec<u64> = (0..rng.gen_range(0usize..200))
            .map(|_| rng.gen_range(0u64..1000))
            .collect();
        let from = rng.gen_range(1usize..8);
        let to = rng.gen_range(1usize..8);
        let ctx = ctx(3);
        let ds = ctx.parallelize(data.clone(), from);
        let rp = ds.repartition(to).unwrap();
        assert_eq!(rp.num_partitions(), to);
        let mut got = rp.collect().unwrap();
        let mut expected = data;
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

#[test]
fn flat_map_then_count() {
    let mut rng = Rng::seed_from_u64(0xB006);
    for _ in 0..64 {
        let data: Vec<usize> = (0..rng.gen_range(0usize..100))
            .map(|_| rng.gen_range(0usize..5))
            .collect();
        let parts = rng.gen_range(1usize..6);
        let ctx = ctx(4);
        let expected: usize = data.iter().sum();
        let ds = ctx.parallelize(data, parts);
        let out = ds.flat_map(|&n| std::iter::repeat_n((), n)).unwrap();
        assert_eq!(out.count(), expected);
    }
}

#[test]
fn workers_do_not_change_results() {
    let mut rng = Rng::seed_from_u64(0xB007);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..150);
        let records: Vec<(u8, u64)> = (0..n)
            .map(|_| (rng.gen_range(0u8..6), rng.gen_range(1u64..100)))
            .collect();
        let parts = rng.gen_range(1usize..8);
        let mut reference = None;
        for workers in [1usize, 2, 8] {
            let ctx = ctx(workers);
            let ds = ctx.parallelize(records.clone(), parts);
            let mut got = ds
                .reduce_by_key(|a, b| a.max(b))
                .unwrap()
                .collect()
                .unwrap();
            got.sort_unstable();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r),
            }
        }
    }
}
