//! The worker pool: runs one task per partition across a fixed number of
//! worker threads, with bounded retry and speculative execution.
//!
//! Work items are pulled from a shared queue (dynamic scheduling), so a
//! straggler partition — e.g. the Beijing cell of a skewed GPS dataset —
//! does not leave the other workers idle, just as Spark's scheduler hands
//! out tasks to free executor slots. Worker threads are scoped per stage
//! (via [`std::thread::scope`]), which lets tasks borrow stage-local
//! data without `'static` bounds.
//!
//! Fault tolerance follows the Spark contract:
//!
//! * a failed or panicked attempt is **re-queued** up to
//!   [`StageOptions::max_task_retries`] times while healthy workers keep
//!   draining; only an exhausted budget fails the job, with every
//!   attempt's cause attached ([`EngineError::TaskFailed`]);
//! * with [`SpeculationConfig`] set, an idle worker whose queue is empty
//!   launches a **duplicate attempt** of a task that has been running much
//!   longer than the completed-task duration quantile; the first
//!   completion wins and the loser's result is discarded (task closures
//!   must therefore be idempotent per partition, which grid passes are);
//! * a [`FaultPlan`] can sabotage attempts deterministically for chaos
//!   tests.
//!
//! This module is the only place in the workspace allowed to call
//! [`catch_unwind`] (enforced by lint rule XL005), so panic recovery
//! stays centralized.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dbscout_telemetry::{DurationHistogram, Recorder, Span, SpanKind};

use crate::error::{EngineError, Result};
use crate::fault::{FaultKind, FaultPlan};
use crate::metrics::{EngineMetrics, StageRecord};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Worker closures wrap every user task in [`catch_unwind`], so a poisoned
/// lock can only mean the panic was already caught and recorded; taking the
/// inner value is sound and keeps the engine panic-free.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// When and how aggressively idle workers duplicate straggler tasks.
#[derive(Debug, Clone, Copy)]
pub struct SpeculationConfig {
    /// Minimum number of completed tasks before durations are trusted.
    pub min_completed: usize,
    /// Duration quantile (in `0.0..=1.0`) of completed tasks used as the
    /// straggler baseline (Spark's `spark.speculation.quantile`).
    pub quantile: f64,
    /// A running task is a straggler once its elapsed time exceeds
    /// `quantile duration * multiplier`.
    pub multiplier: f64,
    /// Never speculate a task running for less than this, whatever the
    /// quantile says — guards against duplicating microsecond tasks.
    pub min_runtime: Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            min_completed: 3,
            quantile: 0.75,
            multiplier: 4.0,
            min_runtime: Duration::from_millis(100),
        }
    }
}

/// Per-stage execution policy for [`run_stage`].
#[derive(Clone, Copy)]
pub struct StageOptions<'a> {
    /// Number of worker threads.
    pub workers: usize,
    /// How many times a failed task may be re-queued before the stage
    /// fails (`0` = fail on first error, Spark's `maxFailures - 1`).
    pub max_task_retries: usize,
    /// Straggler-duplication policy; `None` disables speculation.
    pub speculation: Option<SpeculationConfig>,
    /// Deterministic fault injection for chaos tests.
    pub fault_plan: Option<&'a FaultPlan>,
    /// Metrics log to push this stage's [`StageRecord`] into.
    pub metrics: Option<&'a EngineMetrics>,
    /// Span sink for per-attempt task spans; `None` (the default) keeps
    /// the hot path span-free — no allocation, no locking.
    pub recorder: Option<&'a dyn Recorder>,
    /// Seed for schedule-exploration tests: perturbs work-queue pop
    /// order (see [`WorkQueue`]). `None` (the default) pops FIFO.
    /// Results must be byte-identical for every seed — that invariant is
    /// what the schedule-chaos suite asserts.
    pub schedule_seed: Option<u64>,
    /// Stage name used in errors and fault decisions.
    pub stage: &'a str,
}

impl std::fmt::Debug for StageOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageOptions")
            .field("workers", &self.workers)
            .field("max_task_retries", &self.max_task_retries)
            .field("speculation", &self.speculation)
            .field("fault_plan", &self.fault_plan)
            .field("metrics", &self.metrics.is_some())
            .field("recorder", &self.recorder.is_some())
            .field("schedule_seed", &self.schedule_seed)
            .field("stage", &self.stage)
            .finish()
    }
}

impl<'a> StageOptions<'a> {
    /// A plain policy: no retries, no speculation, no faults.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            max_task_retries: 0,
            speculation: None,
            fault_plan: None,
            metrics: None,
            recorder: None,
            schedule_seed: None,
            stage: "task",
        }
    }
}

/// Stage-local tallies the workers update as attempts settle; folded
/// into one [`StageRecord`] when the stage finishes.
#[derive(Debug, Default)]
struct StageCounters {
    tasks: AtomicU64,
    retries: AtomicU64,
    speculative_launches: AtomicU64,
    speculative_wins: AtomicU64,
    injected_faults: AtomicU64,
    /// Durations of winning attempts only — a superseded speculative
    /// loser must not skew the percentiles (or the task count above).
    durations_hist: Mutex<DurationHistogram>,
}

impl StageCounters {
    /// Folds the tallies into a [`StageRecord`] for a stage that started
    /// at `started` (record/shuffle volumes are attached afterwards by
    /// the operation that ran the stage).
    fn into_record(self, stage: &str, started: Instant) -> StageRecord {
        let mut record = StageRecord::new(stage);
        record.started = started;
        record.duration = started.elapsed();
        record.tasks = self.tasks.into_inner();
        record.task_retries = self.retries.into_inner();
        record.speculative_launches = self.speculative_launches.into_inner();
        record.speculative_wins = self.speculative_wins.into_inner();
        record.injected_faults = self.injected_faults.into_inner();
        record.task_durations = self
            .durations_hist
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        record
    }
}

/// Runs `tasks` (one closure per partition) on at most `workers` threads
/// and returns their results in task order. Equivalent to [`run_stage`]
/// with [`StageOptions::new`]: no retries, no speculation.
pub fn run_tasks<T, F>(workers: usize, tasks: Vec<F>) -> Result<Vec<T>>
where
    T: Send,
    F: Fn() -> T + Send + Sync,
{
    run_stage(&StageOptions::new(workers), tasks)
}

/// Like [`run_tasks`], but each worker thread owns one scratch value
/// built by `make_scratch`, passed to every task it runs. Hot loops that
/// need buffers (neighbor-cell lists, gathered coordinates) allocate them
/// once per worker instead of once per task. Equivalent to
/// [`run_stage_with`] with [`StageOptions::new`].
///
/// Tasks must not assume anything about the scratch's contents on entry
/// (clear what you use): the same value is reused across tasks, retried
/// attempts, and speculative duplicates on that worker.
pub fn run_tasks_with<S, T, F>(
    workers: usize,
    make_scratch: impl Fn() -> S + Send + Sync,
    tasks: Vec<F>,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&mut S) -> T + Send + Sync,
{
    run_stage_with(&StageOptions::new(workers), make_scratch, tasks)
}

/// Runs `tasks` concurrently, one scoped thread per task, returning their
/// results in task order. One thread per task is intentional: callers
/// size the list to their worker budget (e.g. one scatter shard per
/// thread), so pooling would add queuing without adding parallelism.
///
/// Unlike [`run_tasks`], the closures are `FnOnce` and may therefore own
/// or mutably borrow state exclusively — the contract the parallel
/// cell-major scatter needs, where each task holds `&mut` shard segments
/// of the output buffers. The price is that attempts cannot be re-run:
/// there is **no retry and no speculation** here (an `FnOnce` consumed by
/// a failed attempt is gone), so this runner is for deterministic
/// CPU-bound stages whose only failure mode is a task's own `Result`.
/// Panics are not caught either; a panicking task propagates out of the
/// scope join, as [`std::thread::scope`] defines.
pub fn run_exclusive_tasks<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if tasks.len() <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|f| scope.spawn(f)).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // The thread panicked; re-raise on the caller's thread so
                // the failure is not silently swallowed.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// One scheduled attempt of one partition's task.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    partition: usize,
    attempt: usize,
    speculative: bool,
}

/// Mutable per-partition bookkeeping shared by the workers.
struct PartitionState<T> {
    result: Option<T>,
    /// One cause per failed attempt, in attempt order.
    failures: Vec<String>,
    /// Attempts handed to workers so far (including speculative ones).
    launched: usize,
    /// When the first still-running attempt started.
    running_since: Option<Instant>,
    /// Whether a speculative duplicate was already launched.
    speculated: bool,
    /// Whether the retry budget is exhausted (terminal failure).
    exhausted: bool,
}

impl<T> PartitionState<T> {
    fn new() -> Self {
        Self {
            result: None,
            failures: Vec::new(),
            launched: 0,
            running_since: None,
            speculated: false,
            exhausted: false,
        }
    }

    fn settled(&self) -> bool {
        self.result.is_some() || self.exhausted
    }
}

/// Everything the worker threads share for one stage.
/// The stage's shared work queue, with an optional seeded perturbation
/// of pop order for schedule-exploration tests.
///
/// Production pops FIFO. With a seed set ([`StageOptions::schedule_seed`])
/// each pop draws from an xorshift64 stream and removes a pseudo-random
/// element instead, exploring task interleavings no FIFO run would
/// produce while staying reproducible for a given seed. The rng state
/// lives inside the queue's mutex, so perturbation adds no new shared
/// state and no extra synchronization.
struct WorkQueue {
    items: VecDeque<WorkItem>,
    /// xorshift64 state; `None` = FIFO (production).
    rng: Option<u64>,
}

impl WorkQueue {
    fn new(items: VecDeque<WorkItem>, seed: Option<u64>) -> Self {
        WorkQueue {
            items,
            // xorshift64 has a fixed point at 0; nudge a zero seed off it.
            rng: seed.map(|s| s.max(1)),
        }
    }

    fn pop(&mut self) -> Option<WorkItem> {
        match self.rng {
            Some(ref mut state) if self.items.len() > 1 => {
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                let idx = (x % self.items.len() as u64) as usize;
                self.items.remove(idx)
            }
            _ => self.items.pop_front(),
        }
    }

    fn push_back(&mut self, item: WorkItem) {
        self.items.push_back(item);
    }
}

struct StageShared<'a, T, F> {
    opts: &'a StageOptions<'a>,
    tasks: &'a [F],
    states: Vec<Mutex<PartitionState<T>>>,
    queue: Mutex<WorkQueue>,
    /// Partitions that reached a terminal state (result or exhausted).
    settled: AtomicUsize,
    /// Durations of successful attempts (feeds the speculation quantile).
    durations: Mutex<Vec<Duration>>,
    /// Stage-local metric tallies (folded into one [`StageRecord`]).
    counters: &'a StageCounters,
}

/// Runs one stage — `tasks` (one closure per partition) under the retry,
/// speculation, and fault-injection policy in `opts` — returning results
/// in task order.
///
/// All partitions run to a terminal state even when one fails (workers
/// keep draining the queue, mirroring a cluster where one failed task
/// does not kill its peers mid-flight); the error then reported is
/// [`EngineError::TaskFailed`] for the lowest-indexed exhausted
/// partition, carrying every attempt's cause.
pub fn run_stage<'a, T, F>(opts: &StageOptions<'a>, tasks: Vec<F>) -> Result<Vec<T>>
where
    T: Send,
    F: Fn() -> T + Send + Sync,
{
    // Scratch-free tasks are the `S = ()` case of the generic runner; the
    // adapter closures compile away.
    let tasks: Vec<_> = tasks.into_iter().map(|f| move |_: &mut ()| f()).collect();
    run_stage_with(opts, || (), tasks)
}

/// [`run_stage`] with per-worker scratch state: `make_scratch` is called
/// once per worker thread (once total on the sequential path) and the
/// resulting value is passed by `&mut` to every task that worker runs.
/// See [`run_tasks_with`] for the reuse contract tasks must honor.
pub fn run_stage_with<'a, S, T, F>(
    opts: &StageOptions<'a>,
    make_scratch: impl Fn() -> S + Send + Sync,
    tasks: Vec<F>,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&mut S) -> T + Send + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = opts.workers.max(1).min(n);
    let started = Instant::now();
    let counters = StageCounters::default();

    // Single-threaded fast path: in-order retry loop, no speculation
    // (a lone worker has no idle capacity to speculate with).
    let result = if workers == 1 {
        let mut scratch = make_scratch();
        run_sequential(opts, &tasks, &counters, &mut scratch)
    } else {
        let shared = StageShared {
            opts,
            tasks: &tasks,
            states: (0..n).map(|_| Mutex::new(PartitionState::new())).collect(),
            queue: Mutex::new(WorkQueue::new(
                (0..n)
                    .map(|partition| WorkItem {
                        partition,
                        attempt: 0,
                        speculative: false,
                    })
                    .collect(),
                opts.schedule_seed,
            )),
            settled: AtomicUsize::new(0),
            durations: Mutex::new(Vec::with_capacity(n)),
            counters: &counters,
        };

        std::thread::scope(|scope| {
            for lane in 0..workers {
                let shared = &shared;
                let make_scratch = &make_scratch;
                scope.spawn(move || {
                    let mut scratch = make_scratch();
                    worker_loop(shared, lane, &mut scratch);
                });
            }
        });

        collect_results(shared, opts)
    };

    // One record per stage execution, failures included, so reports can
    // still show the retries/faults of a stage that brought the job down.
    if let Some(m) = opts.metrics {
        m.push_stage(counters.into_record(opts.stage, started));
    }
    result
}

/// The body of one worker thread: drain the queue, then look for
/// stragglers to speculate on, then idle-wait until the stage settles.
/// `lane` is the worker's index, used as the trace lane of its spans.
fn worker_loop<S, T: Send, F: Fn(&mut S) -> T>(
    shared: &StageShared<'_, T, F>,
    lane: usize,
    scratch: &mut S,
) {
    let n = shared.tasks.len();
    loop {
        if shared.settled.load(Ordering::Acquire) >= n {
            break;
        }
        let item = lock_unpoisoned(&shared.queue).pop();
        let Some(item) = item.or_else(|| pick_speculative(shared)) else {
            // Nothing to run right now: another worker may still fail and
            // re-queue, so poll until every partition settles.
            std::thread::sleep(Duration::from_micros(100));
            continue;
        };
        run_item(shared, item, lane, scratch);
    }
}

/// How one task attempt ended, for its trace span.
#[derive(Debug, Clone, Copy)]
enum AttemptOutcome {
    Success,
    /// Failed, but re-queued within the retry budget.
    Retried,
    /// Failed with the retry budget exhausted.
    Exhausted,
    /// Finished after a concurrent duplicate already settled the
    /// partition; the result was discarded and nothing was counted.
    Superseded,
}

impl AttemptOutcome {
    fn as_str(self) -> &'static str {
        match self {
            AttemptOutcome::Success => "success",
            AttemptOutcome::Retried => "retried",
            AttemptOutcome::Exhausted => "exhausted",
            AttemptOutcome::Superseded => "superseded",
        }
    }
}

/// Emits the span for one finished task attempt (only when a recorder is
/// installed — the disabled path allocates nothing).
fn record_task_span(
    opts: &StageOptions<'_>,
    item: WorkItem,
    lane: usize,
    started: Instant,
    outcome: AttemptOutcome,
) {
    if let Some(rec) = opts.recorder {
        rec.record_span(
            Span::new(opts.stage, SpanKind::Task, started, started.elapsed())
                .lane(lane as u64 + 1)
                .arg("partition", item.partition)
                .arg("attempt", item.attempt)
                .arg("speculative", item.speculative)
                .arg("outcome", outcome.as_str()),
        );
    }
}

/// Executes one work item and records its outcome.
fn run_item<S, T: Send, F: Fn(&mut S) -> T>(
    shared: &StageShared<'_, T, F>,
    item: WorkItem,
    lane: usize,
    scratch: &mut S,
) {
    let Some(state) = shared.states.get(item.partition) else {
        return; // out-of-range item: scheduler bug, but never panic
    };
    {
        let mut st = lock_unpoisoned(state);
        if st.settled() {
            return; // stale item (partition already won or failed)
        }
        st.launched += 1;
        if st.running_since.is_none() {
            st.running_since = Some(Instant::now());
        }
    }
    let Some(task) = shared.tasks.get(item.partition) else {
        return;
    };
    let started = Instant::now();
    let settled_probe = || lock_unpoisoned(state).settled();
    let outcome = run_attempt(
        shared.opts,
        shared.counters,
        task,
        item.partition,
        item.attempt,
        &settled_probe,
        scratch,
    );

    let mut st = lock_unpoisoned(state);
    if st.settled() {
        // A concurrent duplicate settled this partition first: discard
        // the result and charge nothing — the winner already paid this
        // task into the counters, and double-counting the loser would
        // skew task counts and duration percentiles.
        drop(st);
        record_task_span(shared.opts, item, lane, started, AttemptOutcome::Superseded);
        return;
    }
    match outcome {
        Ok(value) => {
            st.result = Some(value);
            shared.settled.fetch_add(1, Ordering::Release);
            let elapsed = started.elapsed();
            lock_unpoisoned(&shared.durations).push(elapsed);
            shared.counters.tasks.fetch_add(1, Ordering::Relaxed);
            lock_unpoisoned(&shared.counters.durations_hist).record(elapsed);
            if item.speculative {
                shared
                    .counters
                    .speculative_wins
                    .fetch_add(1, Ordering::Relaxed);
            }
            drop(st);
            record_task_span(shared.opts, item, lane, started, AttemptOutcome::Success);
        }
        Err(cause) => {
            st.failures
                .push(format!("attempt {}: {cause}", item.attempt + 1));
            if st.failures.len() > shared.opts.max_task_retries {
                st.exhausted = true;
                shared.settled.fetch_add(1, Ordering::Release);
                drop(st);
                record_task_span(shared.opts, item, lane, started, AttemptOutcome::Exhausted);
            } else {
                shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                let attempt = st.failures.len();
                drop(st);
                // Re-queue at the back: healthy partitions drain first.
                lock_unpoisoned(&shared.queue).push_back(WorkItem {
                    partition: item.partition,
                    attempt,
                    speculative: false,
                });
                record_task_span(shared.opts, item, lane, started, AttemptOutcome::Retried);
            }
        }
    }
}

/// Looks for a straggler worth duplicating; returns its work item after
/// marking the partition speculated (each partition is duplicated at most
/// once).
fn pick_speculative<T, F>(shared: &StageShared<'_, T, F>) -> Option<WorkItem> {
    let spec = shared.opts.speculation?;
    let threshold = {
        let durations = lock_unpoisoned(&shared.durations);
        if durations.len() < spec.min_completed.max(1) {
            return None;
        }
        let mut sorted = durations.clone();
        drop(durations);
        sorted.sort_unstable();
        let idx = (((sorted.len() - 1) as f64) * spec.quantile.clamp(0.0, 1.0)).round() as usize;
        let base = sorted.get(idx).copied().unwrap_or_default();
        base.mul_f64(spec.multiplier.max(1.0)).max(spec.min_runtime)
    };
    for (partition, state) in shared.states.iter().enumerate() {
        let mut st = lock_unpoisoned(state);
        if st.settled() || st.speculated {
            continue;
        }
        let Some(since) = st.running_since else {
            continue;
        };
        if since.elapsed() >= threshold {
            st.speculated = true;
            let attempt = st.launched;
            shared
                .counters
                .speculative_launches
                .fetch_add(1, Ordering::Relaxed);
            return Some(WorkItem {
                partition,
                attempt,
                speculative: true,
            });
        }
    }
    None
}

/// Runs one attempt: consults the fault plan, then the real task under
/// [`catch_unwind`]. `settled` reports whether a concurrent duplicate
/// already settled this partition; injected delays poll it so a
/// speculative winner releases the delayed worker early instead of
/// pinning it for the full delay.
#[allow(clippy::too_many_arguments)]
fn run_attempt<S, T, F: Fn(&mut S) -> T>(
    opts: &StageOptions<'_>,
    counters: &StageCounters,
    task: &F,
    partition: usize,
    attempt: usize,
    settled: &dyn Fn() -> bool,
    scratch: &mut S,
) -> std::result::Result<T, String> {
    if let Some(plan) = opts.fault_plan {
        if let Some(kind) = plan.decide(opts.stage, partition, attempt) {
            counters.injected_faults.fetch_add(1, Ordering::Relaxed);
            match kind {
                FaultKind::Panic => {
                    return Err(format!("injected panic (attempt {})", attempt + 1))
                }
                FaultKind::Transient => {
                    return Err(format!(
                        "injected transient task failure (attempt {})",
                        attempt + 1
                    ))
                }
                FaultKind::Delay(total) => {
                    let delayed_since = Instant::now();
                    while !settled() {
                        let remaining = total.saturating_sub(delayed_since.elapsed());
                        if remaining.is_zero() {
                            break;
                        }
                        std::thread::sleep(remaining.min(Duration::from_millis(2)));
                    }
                }
            }
        }
    }
    // A task that panics mid-mutation may leave its scratch logically
    // stale for the next task on this worker — part of why tasks must
    // clear what they use on entry (see `run_tasks_with`).
    match catch_unwind(AssertUnwindSafe(|| task(scratch))) {
        Ok(v) => Ok(v),
        Err(payload) => Err(panic_message(payload)),
    }
}

/// The single-worker path: tasks run in partition order; a failed task
/// retries immediately (there are no peers to interleave with).
fn run_sequential<S, T, F>(
    opts: &StageOptions<'_>,
    tasks: &[F],
    counters: &StageCounters,
    scratch: &mut S,
) -> Result<Vec<T>>
where
    F: Fn(&mut S) -> T,
{
    let mut out = Vec::with_capacity(tasks.len());
    for (partition, task) in tasks.iter().enumerate() {
        let mut failures: Vec<String> = Vec::new();
        loop {
            let item = WorkItem {
                partition,
                attempt: failures.len(),
                speculative: false,
            };
            let started = Instant::now();
            match run_attempt(
                opts,
                counters,
                task,
                partition,
                failures.len(),
                &|| false,
                scratch,
            ) {
                Ok(v) => {
                    counters.tasks.fetch_add(1, Ordering::Relaxed);
                    lock_unpoisoned(&counters.durations_hist).record(started.elapsed());
                    record_task_span(opts, item, 0, started, AttemptOutcome::Success);
                    out.push(v);
                    break;
                }
                Err(cause) => {
                    failures.push(format!("attempt {}: {cause}", failures.len() + 1));
                    if failures.len() > opts.max_task_retries {
                        record_task_span(opts, item, 0, started, AttemptOutcome::Exhausted);
                        return Err(EngineError::TaskFailed {
                            stage: opts.stage.to_owned(),
                            partition,
                            attempts: failures.len(),
                            causes: failures,
                        });
                    }
                    counters.retries.fetch_add(1, Ordering::Relaxed);
                    record_task_span(opts, item, 0, started, AttemptOutcome::Retried);
                }
            }
        }
    }
    Ok(out)
}

/// Tears the shared state down into ordered results, or the error for the
/// lowest-indexed exhausted partition.
fn collect_results<T, F>(shared: StageShared<'_, T, F>, opts: &StageOptions<'_>) -> Result<Vec<T>> {
    let mut out = Vec::with_capacity(shared.states.len());
    for (partition, state) in shared.states.into_iter().enumerate() {
        let st = match state.into_inner() {
            Ok(st) => st,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(v) = st.result {
            out.push(v);
        } else if st.exhausted {
            return Err(EngineError::TaskFailed {
                stage: opts.stage.to_owned(),
                partition,
                attempts: st.failures.len(),
                causes: st.failures,
            });
        } else {
            return Err(EngineError::Internal {
                message: format!("no result recorded for partition {partition}"),
            });
        }
    }
    Ok(out)
}

/// Renders a panic payload for error reports. String payloads (the common
/// `panic!("...")` case) are returned verbatim; anything else is reported
/// with the payload's type name so exhausted retries stay debuggable.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        format!(
            "<non-string panic payload of type {}>",
            payload_type_name(payload.as_ref())
        )
    }
}

/// Best-effort name of a panic payload's concrete type. `dyn Any` erases
/// the name, so common `panic_any` payload types are probed explicitly;
/// anything else falls back to its opaque [`std::any::TypeId`].
fn payload_type_name(payload: &(dyn std::any::Any + Send)) -> String {
    macro_rules! probe {
        ($($t:ty),* $(,)?) => {
            $(if payload.is::<$t>() {
                return std::any::type_name::<$t>().to_owned();
            })*
        };
    }
    probe!(
        Box<str>,
        std::borrow::Cow<'static, str>,
        i8,
        i16,
        i32,
        i64,
        i128,
        isize,
        u8,
        u16,
        u32,
        u64,
        u128,
        usize,
        f32,
        f64,
        bool,
        char,
        (),
    );
    format!("{:?}", payload.type_id())
}

#[cfg(test)]
mod tests {
    use super::*;

    type BoxedTask<T> = Box<dyn Fn() -> T + Send + Sync>;

    fn items(n: usize) -> VecDeque<WorkItem> {
        (0..n)
            .map(|partition| WorkItem {
                partition,
                attempt: 0,
                speculative: false,
            })
            .collect()
    }

    #[test]
    fn fifo_queue_pops_in_order() {
        let mut q = WorkQueue::new(items(5), None);
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|i| i.partition)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn seeded_queue_pops_every_item_exactly_once() {
        let mut q = WorkQueue::new(items(16), Some(42));
        let mut order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|i| i.partition)
            .collect();
        assert_ne!(order, (0..16).collect::<Vec<_>>(), "seed 42 must shuffle");
        order.sort_unstable();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_queue_is_reproducible_and_seed_sensitive() {
        let drain = |seed: u64| -> Vec<usize> {
            let mut q = WorkQueue::new(items(16), Some(seed));
            std::iter::from_fn(|| q.pop())
                .map(|i| i.partition)
                .collect()
        };
        assert_eq!(drain(7), drain(7));
        assert_ne!(drain(7), drain(8));
        // Seed 0 sits on xorshift's fixed point and must still shuffle.
        assert_ne!(drain(0), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn runs_all_tasks_in_order() {
        let tasks: Vec<_> = (0..100).map(|i| move || i * 2).collect();
        let out = run_tasks(4, tasks).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<i32> = run_tasks(4, Vec::<fn() -> i32>::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let mk = || (0..50).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(run_tasks(1, mk()).unwrap(), run_tasks(8, mk()).unwrap());
    }

    #[test]
    fn more_workers_than_tasks() {
        let tasks: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_tasks(64, tasks).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn panic_is_reported_with_partition_index() {
        let tasks: Vec<BoxedTask<i32>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("kaboom")),
            Box::new(|| 3),
        ];
        let err = run_tasks(2, tasks).unwrap_err();
        match err {
            EngineError::TaskFailed {
                partition,
                attempts,
                causes,
                ..
            } => {
                assert_eq!(partition, 1);
                assert_eq!(attempts, 1);
                assert_eq!(causes, vec!["attempt 1: kaboom".to_owned()]);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn panic_with_string_payload() {
        let tasks: Vec<BoxedTask<i32>> = vec![Box::new(|| panic!("{}", String::from("dynamic")))];
        let err = run_tasks(1, tasks).unwrap_err();
        match err {
            EngineError::TaskFailed { causes, .. } => {
                assert_eq!(causes, vec!["attempt 1: dynamic".to_owned()]);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn non_string_panic_payload_reports_type_name() {
        let tasks: Vec<BoxedTask<i32>> = vec![Box::new(|| std::panic::panic_any(42u64))];
        let err = run_tasks(1, tasks).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("u64"), "type name missing: {msg}");
    }

    #[test]
    fn lowest_failing_partition_wins() {
        // Both tasks panic; the error must name partition 0 regardless of
        // scheduling order.
        let tasks: Vec<BoxedTask<i32>> =
            vec![Box::new(|| panic!("first")), Box::new(|| panic!("second"))];
        let err = run_tasks(4, tasks).unwrap_err();
        match err {
            EngineError::TaskFailed {
                partition, causes, ..
            } => {
                assert_eq!(partition, 0);
                assert_eq!(causes, vec!["attempt 1: first".to_owned()]);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn tasks_can_borrow_stage_local_data() {
        let data = vec![10, 20, 30];
        let tasks: Vec<_> = (0..3)
            .map(|i| {
                let data = &data;
                move || data[i] + 1
            })
            .collect();
        assert_eq!(run_tasks(2, tasks).unwrap(), vec![11, 21, 31]);
    }

    #[test]
    fn heavy_skew_still_completes() {
        // One task is much heavier; dynamic scheduling must not deadlock.
        let tasks: Vec<BoxedTask<u64>> = (0..16)
            .map(|i| {
                let work = if i == 0 { 200_000u64 } else { 100 };
                Box::new(move || (0..work).fold(0u64, |a, b| a.wrapping_add(b))) as BoxedTask<u64>
            })
            .collect();
        assert_eq!(run_tasks(4, tasks).unwrap().len(), 16);
    }

    #[test]
    fn transient_faults_are_retried_within_budget() {
        for workers in [1usize, 4] {
            let plan = FaultPlan::builder(0)
                .inject(1, 0, FaultKind::Transient)
                .inject(1, 1, FaultKind::Panic)
                .build();
            let metrics = EngineMetrics::new();
            let opts = StageOptions {
                max_task_retries: 2,
                fault_plan: Some(&plan),
                metrics: Some(&metrics),
                stage: "retry-test",
                ..StageOptions::new(workers)
            };
            let tasks: Vec<_> = (0..4).map(|i| move || i * 10).collect();
            let out = run_stage(&opts, tasks).unwrap();
            assert_eq!(out, vec![0, 10, 20, 30], "workers={workers}");
            let s = metrics.snapshot();
            assert_eq!(s.task_retries, 2, "workers={workers}");
            assert_eq!(s.injected_faults, 2, "workers={workers}");
        }
    }

    #[test]
    fn exhausted_budget_reports_every_attempt() {
        for workers in [1usize, 4] {
            let plan = FaultPlan::builder(0)
                .inject(2, 0, FaultKind::Transient)
                .inject(2, 1, FaultKind::Transient)
                .build();
            let opts = StageOptions {
                max_task_retries: 1,
                fault_plan: Some(&plan),
                stage: "exhaust-test",
                ..StageOptions::new(workers)
            };
            let tasks: Vec<_> = (0..4).map(|i| move || i).collect();
            let err = run_stage(&opts, tasks).unwrap_err();
            match err {
                EngineError::TaskFailed {
                    stage,
                    partition,
                    attempts,
                    causes,
                } => {
                    assert_eq!(stage, "exhaust-test");
                    assert_eq!(partition, 2);
                    assert_eq!(attempts, 2);
                    assert_eq!(causes.len(), 2);
                    assert!(causes[0].starts_with("attempt 1:"), "{causes:?}");
                    assert!(causes[1].starts_with("attempt 2:"), "{causes:?}");
                }
                other => panic!("unexpected error: {other:?}"),
            }
        }
    }

    #[test]
    fn delay_fault_is_not_a_failure() {
        let plan = FaultPlan::builder(0)
            .inject(0, 0, FaultKind::Delay(Duration::from_millis(5)))
            .build();
        let metrics = EngineMetrics::new();
        let opts = StageOptions {
            fault_plan: Some(&plan),
            metrics: Some(&metrics),
            ..StageOptions::new(2)
        };
        let tasks: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_stage(&opts, tasks).unwrap(), vec![0, 1, 2]);
        let s = metrics.snapshot();
        assert_eq!(s.injected_faults, 1);
        assert_eq!(s.task_retries, 0);
    }

    #[test]
    fn scratch_is_built_once_per_worker_and_reused() {
        use std::sync::atomic::AtomicUsize;
        for workers in [1usize, 4] {
            let builds = AtomicUsize::new(0);
            let tasks: Vec<_> = (0..64)
                .map(|i| {
                    move |scratch: &mut Vec<usize>| {
                        scratch.clear();
                        scratch.extend(0..=i);
                        scratch.iter().sum::<usize>()
                    }
                })
                .collect();
            let out = run_tasks_with(
                workers,
                || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    Vec::with_capacity(64)
                },
                tasks,
            )
            .unwrap();
            let expected: Vec<usize> = (0..64).map(|i| i * (i + 1) / 2).collect();
            assert_eq!(out, expected, "workers={workers}");
            assert!(
                builds.load(Ordering::Relaxed) <= workers,
                "scratch built {} times for {workers} workers",
                builds.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn scratch_survives_panicking_tasks() {
        // A panicked attempt must not take the worker's scratch with it:
        // the retry and every later task still get a usable scratch.
        let opts = StageOptions {
            max_task_retries: 1,
            ..StageOptions::new(1)
        };
        let attempts = AtomicU64::new(0);
        type ScratchTask<'a> = Box<dyn Fn(&mut Vec<u64>) -> u64 + Send + Sync + 'a>;
        let tasks: Vec<ScratchTask<'_>> = vec![
            Box::new(|s: &mut Vec<u64>| {
                s.clear();
                s.push(7);
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("first attempt dies");
                }
                s.iter().sum()
            }),
            Box::new(|s: &mut Vec<u64>| {
                s.clear();
                s.push(35);
                s.iter().sum()
            }),
        ];
        let out = run_stage_with(&opts, Vec::new, tasks).unwrap();
        assert_eq!(out, vec![7, 35]);
    }

    #[test]
    fn exclusive_tasks_run_once_each_with_mutable_captures() {
        // FnOnce tasks may own disjoint &mut segments of one buffer —
        // the parallel-scatter ownership shape.
        let mut buf = vec![0u64; 8];
        let (a, b) = buf.split_at_mut(4);
        let out = run_exclusive_tasks(vec![
            Box::new(move || {
                for (i, v) in a.iter_mut().enumerate() {
                    *v = i as u64;
                }
                a.iter().sum::<u64>()
            }) as Box<dyn FnOnce() -> u64 + Send>,
            Box::new(move || {
                for (i, v) in b.iter_mut().enumerate() {
                    *v = 10 + i as u64;
                }
                b.iter().sum::<u64>()
            }),
        ]);
        assert_eq!(out, vec![6, 46]);
        assert_eq!(buf, vec![0, 1, 2, 3, 10, 11, 12, 13]);
    }

    #[test]
    fn exclusive_tasks_handle_empty_and_single() {
        assert!(run_exclusive_tasks(Vec::<fn() -> u8>::new()).is_empty());
        assert_eq!(run_exclusive_tasks(vec![|| 9u8]), vec![9]);
    }

    #[test]
    fn straggler_gets_a_speculative_duplicate() {
        // Partition 7's first attempt is delayed far past the runtime of
        // its peers; an idle worker must duplicate it (the duplicate sees
        // attempt index 1, which the plan leaves alone) and win.
        let plan = FaultPlan::builder(0)
            .inject(7, 0, FaultKind::Delay(Duration::from_secs(5)))
            .build();
        let metrics = EngineMetrics::new();
        let opts = StageOptions {
            speculation: Some(SpeculationConfig {
                min_completed: 3,
                quantile: 0.5,
                multiplier: 2.0,
                min_runtime: Duration::from_millis(20),
            }),
            fault_plan: Some(&plan),
            metrics: Some(&metrics),
            stage: "speculation-test",
            ..StageOptions::new(4)
        };
        let tasks: Vec<_> = (0..8).map(|i| move || i * 3).collect();
        let started = Instant::now();
        let out = run_stage(&opts, tasks).unwrap();
        assert_eq!(out, (0..8).map(|i| i * 3).collect::<Vec<_>>());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "speculation must beat the 5s straggler"
        );
        let s = metrics.snapshot();
        assert!(s.speculative_launches >= 1, "snapshot: {s:?}");
        assert!(s.speculative_wins >= 1, "snapshot: {s:?}");
    }
}
