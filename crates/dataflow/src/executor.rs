//! The worker pool: runs one task per partition across a fixed number of
//! worker threads.
//!
//! Tasks are pulled from a shared atomic cursor (dynamic scheduling), so a
//! straggler partition — e.g. the Beijing cell of a skewed GPS dataset —
//! does not leave the other workers idle, just as Spark's scheduler hands
//! out tasks to free executor slots. Worker threads are scoped per stage
//! (via [`std::thread::scope`]), which lets tasks borrow stage-local
//! data without `'static` bounds.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::error::{EngineError, Result};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Worker closures wrap every user task in [`catch_unwind`], so a poisoned
/// lock can only mean the panic was already caught and recorded; taking the
/// inner value is sound and keeps the engine panic-free.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `tasks` (one closure per partition) on at most `workers` threads
/// and returns their results in task order.
///
/// If any task panics, the panic is caught and reported as
/// [`EngineError::TaskPanic`] for the lowest-indexed failing partition;
/// remaining tasks still run to completion (workers keep draining the
/// queue), mirroring a cluster where one failed task does not kill its
/// peers mid-flight.
pub fn run_tasks<T, F>(workers: usize, tasks: Vec<F>) -> Result<Vec<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = workers.max(1).min(n);

    // Single-threaded fast path: no scope, no synchronisation.
    if workers == 1 {
        let mut out = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(v) => out.push(v),
                Err(payload) => {
                    return Err(EngineError::TaskPanic {
                        partition: i,
                        message: panic_message(payload),
                    })
                }
            }
        }
        return Ok(out);
    }

    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<std::result::Result<T, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The cursor hands out each index exactly once, so the slot
                // is always occupied; `continue` (rather than panicking)
                // keeps the worker alive even if that invariant broke.
                let Some(task) = slots.get(i).and_then(|s| lock_unpoisoned(s).take()) else {
                    continue;
                };
                let outcome = match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(v) => Ok(v),
                    Err(payload) => Err(panic_message(payload)),
                };
                if let Some(slot) = results.get(i) {
                    *lock_unpoisoned(slot) = Some(outcome);
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for (i, slot) in results.into_iter().enumerate() {
        let inner = match slot.into_inner() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        match inner {
            Some(Ok(v)) => out.push(v),
            Some(Err(message)) => {
                return Err(EngineError::TaskPanic {
                    partition: i,
                    message,
                })
            }
            None => {
                return Err(EngineError::Internal {
                    message: format!("no result recorded for partition {i}"),
                })
            }
        }
    }
    Ok(out)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_tasks_in_order() {
        let tasks: Vec<_> = (0..100).map(|i| move || i * 2).collect();
        let out = run_tasks(4, tasks).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<i32> = run_tasks(4, Vec::<fn() -> i32>::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let mk = || (0..50).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(run_tasks(1, mk()).unwrap(), run_tasks(8, mk()).unwrap());
    }

    #[test]
    fn more_workers_than_tasks() {
        let tasks: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_tasks(64, tasks).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn panic_is_reported_with_partition_index() {
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("kaboom")),
            Box::new(|| 3),
        ];
        let err = run_tasks(2, tasks).unwrap_err();
        assert_eq!(
            err,
            EngineError::TaskPanic {
                partition: 1,
                message: "kaboom".into()
            }
        );
    }

    #[test]
    fn panic_with_string_payload() {
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| panic!("{}", String::from("dynamic")))];
        let err = run_tasks(1, tasks).unwrap_err();
        match err {
            EngineError::TaskPanic { message, .. } => assert_eq!(message, "dynamic"),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn lowest_failing_partition_wins() {
        // Both tasks panic; the error must name partition 0 regardless of
        // scheduling order.
        let tasks: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| panic!("first")), Box::new(|| panic!("second"))];
        let err = run_tasks(4, tasks).unwrap_err();
        match err {
            EngineError::TaskPanic { partition, message } => {
                assert_eq!(partition, 0);
                assert_eq!(message, "first");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn tasks_can_borrow_stage_local_data() {
        let data = vec![10, 20, 30];
        let tasks: Vec<_> = (0..3)
            .map(|i| {
                let data = &data;
                move || data[i] + 1
            })
            .collect();
        assert_eq!(run_tasks(2, tasks).unwrap(), vec![11, 21, 31]);
    }

    #[test]
    fn heavy_skew_still_completes() {
        // One task is much heavier; dynamic scheduling must not deadlock.
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..16)
            .map(|i| {
                let work = if i == 0 { 200_000u64 } else { 100 };
                Box::new(move || (0..work).fold(0u64, |a, b| a.wrapping_add(b)))
                    as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        assert_eq!(run_tasks(4, tasks).unwrap().len(), 16);
    }
}
