//! Read-only broadcast variables.
//!
//! DBSCOUT broadcasts its *cell maps* (dense-cell map, core-cell map) to
//! all executors so that per-partition tasks can classify cells without a
//! shuffle (paper §III-C, §III-E). A [`Broadcast<T>`] models that: a
//! cheaply-cloneable, immutable handle that tasks may capture.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable value shared with every worker task.
///
/// Created via [`ExecutionContext::broadcast`](crate::ExecutionContext::broadcast)
/// so the engine can count broadcasts in its metrics. Cloning is O(1).
#[derive(Debug)]
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Broadcast<T> {
    pub(crate) fn new(value: T) -> Self {
        Self {
            value: Arc::new(value),
        }
    }

    /// Borrows the broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Self {
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use crate::ExecutionContext;

    #[test]
    fn broadcast_is_shared_not_copied() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let b = ctx.broadcast(vec![1u8; 1024]);
        let b2 = b.clone();
        assert!(std::ptr::eq(b.value().as_ptr(), b2.value().as_ptr()));
    }

    #[test]
    fn deref_reads_value() {
        let ctx = ExecutionContext::builder().workers(1).build();
        let b = ctx.broadcast(41);
        assert_eq!(*b + 1, 42);
    }

    #[test]
    fn broadcast_usable_from_tasks() {
        let ctx = ExecutionContext::builder().workers(4).build();
        let lookup = ctx.broadcast((0..100u64).map(|i| i * 3).collect::<Vec<_>>());
        let ds = ctx.parallelize((0..100u64).collect::<Vec<_>>(), 8);
        let lk = lookup.clone();
        let out = ds.map(move |&i| lk[i as usize]).unwrap().collect().unwrap();
        assert_eq!(out, (0..100u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn broadcasts_are_counted() {
        let ctx = ExecutionContext::builder().workers(1).build();
        let before = ctx.metrics().snapshot().broadcasts;
        let _a = ctx.broadcast(1);
        let _b = ctx.broadcast(2);
        assert_eq!(ctx.metrics().snapshot().broadcasts - before, 2);
    }
}
