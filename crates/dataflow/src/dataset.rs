//! Partitioned datasets and their record-wise transformations.

use std::sync::Arc;

use crate::context::ExecutionContext;
use crate::error::{EngineError, Result};

/// A distributed collection: an ordered list of partitions, each an
/// immutable `Vec<T>` shared behind an [`Arc`].
///
/// Datasets are cheap to clone (partition vectors are shared, not copied),
/// mirroring the reusability of Spark RDDs — DBSCOUT reuses its grid
/// dataset in several downstream transformations. All transformations take
/// `&self` and produce new datasets; user closures observe records by
/// reference and run on the context's worker pool, one task per partition.
#[derive(Debug)]
pub struct Dataset<T> {
    ctx: Arc<ExecutionContext>,
    partitions: Vec<Arc<Vec<T>>>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Self {
            ctx: Arc::clone(&self.ctx),
            partitions: self.partitions.clone(),
        }
    }
}

impl<T: Send + Sync> Dataset<T> {
    /// Wraps explicit partitions into a dataset.
    pub fn from_partitions(ctx: Arc<ExecutionContext>, partitions: Vec<Vec<T>>) -> Self {
        let partitions = if partitions.is_empty() {
            vec![Arc::new(Vec::new())]
        } else {
            partitions.into_iter().map(Arc::new).collect()
        };
        Self { ctx, partitions }
    }

    pub(crate) fn from_arc_partitions(
        ctx: Arc<ExecutionContext>,
        partitions: Vec<Arc<Vec<T>>>,
    ) -> Self {
        Self { ctx, partitions }
    }

    /// The owning execution context.
    pub fn ctx(&self) -> &Arc<ExecutionContext> {
        &self.ctx
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Record count of each partition, in order.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.len()).collect()
    }

    /// Total number of records.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Borrows the partitions (used by sibling modules for shuffles).
    pub(crate) fn partitions(&self) -> &[Arc<Vec<T>>] {
        &self.partitions
    }

    /// Applies `f` to every record (`MAP`).
    pub fn map<U, F>(&self, f: F) -> Result<Dataset<U>>
    where
        U: Send + Sync,
        F: Fn(&T) -> U + Send + Sync,
    {
        self.map_partitions(|part| part.iter().map(&f).collect())
    }

    /// Applies `f` to every record and flattens the results (`FLATMAP`).
    pub fn flat_map<U, I, F>(&self, f: F) -> Result<Dataset<U>>
    where
        U: Send + Sync,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync,
    {
        self.map_partitions(|part| part.iter().flat_map(&f).collect())
    }

    /// Keeps the records for which `pred` holds (`FILTER`).
    pub fn filter<F>(&self, pred: F) -> Result<Dataset<T>>
    where
        T: Clone,
        F: Fn(&T) -> bool + Send + Sync,
    {
        self.map_partitions(|part| part.iter().filter(|r| pred(r)).cloned().collect())
    }

    /// Runs `f` once per partition over the whole partition slice.
    ///
    /// The workhorse behind the record-wise transformations; also the
    /// escape hatch for partition-local algorithms (e.g. map-side combine).
    pub fn map_partitions<U, F>(&self, f: F) -> Result<Dataset<U>>
    where
        U: Send + Sync,
        F: Fn(&[T]) -> Vec<U> + Send + Sync,
    {
        let records_in = self.count() as u64;
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                let f = &f;
                move || f(&part)
            })
            .collect();
        let out = self.ctx.run_stage("map_partitions", tasks)?;
        let records_out: u64 = out.iter().map(|p| p.len() as u64).sum();
        self.ctx.metrics().attach_io(records_in, records_out);
        Ok(Dataset::from_partitions(Arc::clone(&self.ctx), out))
    }

    /// Concatenates two datasets partition-wise (`UNION`). O(1): partitions
    /// are shared, not copied.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ContextMismatch`] if the datasets belong to
    /// different contexts.
    pub fn union(&self, other: &Dataset<T>) -> Result<Dataset<T>> {
        if !Arc::ptr_eq(&self.ctx, &other.ctx) {
            return Err(self.ctx.mismatch_with(&other.ctx));
        }
        let mut partitions = self.partitions.clone();
        partitions.extend(other.partitions.iter().cloned());
        Ok(Dataset::from_arc_partitions(
            Arc::clone(&self.ctx),
            partitions,
        ))
    }

    /// Invokes `f` on every record for its side effects (`FOREACH`).
    pub fn foreach<F>(&self, f: F) -> Result<()>
    where
        F: Fn(&T) + Send + Sync,
    {
        let tasks: Vec<_> = self
            .partitions
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                let f = &f;
                move || part.iter().for_each(f)
            })
            .collect();
        self.ctx.run_stage("foreach", tasks)?;
        self.ctx.metrics().attach_io(self.count() as u64, 0);
        Ok(())
    }

    /// Materialises all records on the driver, in partition order
    /// (`COLLECT`).
    pub fn collect(&self) -> Result<Vec<T>>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.count());
        for part in &self.partitions {
            out.extend(part.iter().cloned());
        }
        Ok(out)
    }

    /// Collects and sorts — convenience for order-insensitive assertions.
    pub fn collect_sorted(&self) -> Result<Vec<T>>
    where
        T: Clone + Ord,
    {
        let mut v = self.collect()?;
        v.sort();
        Ok(v)
    }

    /// First `n` records in partition order (`TAKE`).
    pub fn take(&self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(n.min(self.count()));
        'outer: for part in &self.partitions {
            for r in part.iter() {
                if out.len() == n {
                    break 'outer;
                }
                out.push(r.clone());
            }
        }
        out
    }

    /// Redistributes records into `n` partitions round-robin
    /// (`REPARTITION`). Every record moves, so the full record count is
    /// charged to the shuffle counter.
    pub fn repartition(&self, n: usize) -> Result<Dataset<T>>
    where
        T: Clone,
    {
        if n == 0 {
            return Err(EngineError::InvalidPartitionCount { requested: n });
        }
        let mut record = crate::metrics::StageRecord::new("repartition");
        let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        let mut i = 0usize;
        for part in &self.partitions {
            for r in part.iter() {
                if let Some(slot) = parts.get_mut(i % n) {
                    slot.push(r.clone());
                }
                i += 1;
            }
        }
        record.duration = record.started.elapsed();
        record.records_in = i as u64;
        record.records_out = i as u64;
        record.shuffle_records = i as u64;
        record.shuffle_bytes = (i * std::mem::size_of::<T>()) as u64;
        self.ctx.metrics().push_driver_stage(record);
        Ok(Dataset::from_partitions(Arc::clone(&self.ctx), parts))
    }
}

#[cfg(test)]
mod tests {
    use crate::ExecutionContext;

    fn ctx() -> std::sync::Arc<ExecutionContext> {
        ExecutionContext::builder().workers(4).build()
    }

    #[test]
    fn map_preserves_partitioning_and_order() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..100).collect::<Vec<_>>(), 7);
        let out = ds.map(|x| x + 1).unwrap();
        assert_eq!(out.num_partitions(), 7);
        assert_eq!(out.collect().unwrap(), (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_expands_and_contracts() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![0, 1, 2, 3], 2);
        let out = ds.flat_map(|&x| vec![x; x as usize]).unwrap();
        assert_eq!(out.collect().unwrap(), vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn filter_keeps_matching() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..20).collect::<Vec<_>>(), 3);
        let out = ds.filter(|x| x % 2 == 0).unwrap();
        assert_eq!(out.count(), 10);
        assert!(out.collect().unwrap().iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn union_is_zero_copy_concat() {
        let ctx = ctx();
        let a = ctx.parallelize(vec![1, 2], 2);
        let b = ctx.parallelize(vec![3], 1);
        let u = a.union(&b).unwrap();
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.collect().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn union_rejects_foreign_context() {
        let a = ctx().parallelize(vec![1], 1);
        let b = ctx().parallelize(vec![2], 1);
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn foreach_observes_every_record() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ctx = ctx();
        let ds = ctx.parallelize((1..=100u64).collect::<Vec<_>>(), 8);
        let sum = AtomicU64::new(0);
        ds.foreach(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn take_respects_partition_order() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..50).collect::<Vec<_>>(), 5);
        assert_eq!(ds.take(3), vec![0, 1, 2]);
        assert_eq!(ds.take(0), Vec::<i32>::new());
        assert_eq!(ds.take(1000).len(), 50);
    }

    #[test]
    fn repartition_round_robin() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 2);
        let out = ds.repartition(3).unwrap();
        assert_eq!(out.num_partitions(), 3);
        assert_eq!(out.collect_sorted().unwrap(), (0..10).collect::<Vec<_>>());
        let sizes = out.partition_sizes();
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn repartition_zero_is_error() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![1], 1);
        assert!(ds.repartition(0).is_err());
    }

    #[test]
    fn panicking_closure_becomes_error() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 4);
        let err = ds
            .map(|&x| {
                if x == 7 {
                    panic!("bad record");
                }
                x
            })
            .unwrap_err();
        match err {
            crate::EngineError::TaskFailed {
                stage,
                attempts,
                causes,
                ..
            } => {
                // The context's default retry budget re-runs the task; a
                // deterministic panic fails every attempt.
                assert_eq!(attempts, crate::context::DEFAULT_TASK_RETRIES + 1);
                assert!(
                    causes.iter().all(|c| c.contains("bad record")),
                    "{causes:?}"
                );
                assert!(stage.contains("map_partitions"), "stage: {stage}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dataset_is_reusable() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 2);
        let evens = ds.filter(|x| x % 2 == 0).unwrap();
        let odds = ds.filter(|x| x % 2 == 1).unwrap();
        assert_eq!(evens.count() + odds.count(), ds.count());
    }

    #[test]
    fn empty_input_yields_one_empty_partition() {
        let ctx = ctx();
        let ds: crate::Dataset<i32> = crate::Dataset::from_partitions(ctx, Vec::new());
        assert_eq!(ds.num_partitions(), 1);
        assert_eq!(ds.count(), 0);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..12).collect::<Vec<_>>(), 4);
        let sums = ds.map_partitions(|p| vec![p.iter().sum::<i32>()]).unwrap();
        assert_eq!(sums.count(), 4);
        assert_eq!(sums.collect().unwrap().iter().sum::<i32>(), 66);
    }

    #[test]
    fn metrics_count_stages_and_records() {
        let ctx = ctx();
        let before = ctx.metrics().snapshot();
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 2);
        let _ = ds.map(|x| *x).unwrap();
        let d = ctx.metrics().snapshot().since(&before);
        assert_eq!(d.stages, 1);
        assert_eq!(d.tasks, 2);
        assert_eq!(d.records_in, 10);
        assert_eq!(d.records_out, 10);
    }
}
