//! Wire protocol of the process-worker backend: length-prefixed,
//! versioned binary frames over a child process's stdin/stdout pipe
//! pair.
//!
//! The framing follows the same discipline as the `DBSC` dataset format
//! in `dbscout-data`: a fixed magic, an explicit version byte (so a
//! parent and child built from different revisions fail with a precise
//! [`IpcError::UnsupportedVersion`] instead of desynchronising), and
//! bounds-checked little-endian decoding that returns errors, never
//! panics. Each frame is self-delimiting — `magic, version, kind,
//! payload length (u32 LE), payload` — so a reader can stop cleanly at
//! a pipe EOF between frames (a dead worker) and distinguish it from a
//! frame cut off mid-payload (a worker killed mid-write).
//!
//! Task payloads are opaque byte blobs at this layer: the engine ships
//! work descriptors between processes without knowing what they mean,
//! which keeps the dataflow crate algorithm-agnostic (closures cannot
//! cross a process boundary, so the process backend trades `Fn` tasks
//! for serialized descriptors).

use std::fmt;
use std::io::{Read, Write};

/// Magic bytes that open every frame.
pub(crate) const FRAME_MAGIC: &[u8; 4] = b"DBIP";
/// Current frame protocol version. v1 — initial six frame kinds; v2 —
/// `cpu_time_us` in heartbeats and the [`Frame::Telemetry`] frame
/// (per-task child spans for the merged distributed trace).
pub(crate) const FRAME_VERSION: u8 = 2;
/// Hard cap on a frame payload (1 GiB) — a corrupt length prefix must
/// not translate into an unbounded allocation.
const MAX_PAYLOAD: usize = 1 << 30;

/// Length of the fixed frame header: magic, version, kind, payload
/// length as little-endian `u32`.
const FRAME_HEADER_LEN: usize = FRAME_MAGIC.len() + 1 + 1 + 4;

/// Errors of the frame codec.
#[derive(Debug)]
pub enum IpcError {
    /// Underlying pipe error.
    Io(std::io::Error),
    /// The stream does not start with the frame magic — the peer is not
    /// speaking this protocol at all.
    BadMagic,
    /// The magic matched but the version byte is one this build does not
    /// speak — parent/child built from different revisions.
    UnsupportedVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The frame kind byte is not one this build knows.
    UnknownKind {
        /// The kind byte found on the wire.
        found: u8,
    },
    /// A frame was cut off mid-header or mid-payload — the peer died
    /// while writing.
    Truncated,
    /// The frame decoded structurally but its payload is invalid.
    Malformed {
        /// What was wrong with the payload.
        message: String,
    },
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::Io(e) => write!(f, "ipc pipe error: {e}"),
            IpcError::BadMagic => write!(f, "not a worker-protocol frame (bad magic)"),
            IpcError::UnsupportedVersion { found } => write!(
                f,
                "unsupported worker-protocol version {found} (this build speaks version \
                 {FRAME_VERSION})"
            ),
            IpcError::UnknownKind { found } => {
                write!(f, "unknown worker-protocol frame kind {found}")
            }
            IpcError::Truncated => write!(f, "worker-protocol frame truncated mid-write"),
            IpcError::Malformed { message } => {
                write!(f, "malformed worker-protocol frame: {message}")
            }
        }
    }
}

impl std::error::Error for IpcError {}

impl From<std::io::Error> for IpcError {
    fn from(e: std::io::Error) -> Self {
        IpcError::Io(e)
    }
}

// Compile-time proof of the XL004 contract: the error type is
// `Display + std::error::Error + Send + Sync`.
const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<IpcError>();

/// One protocol message. Parent → child: [`Frame::Task`],
/// [`Frame::Shutdown`]. Child → parent: everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// First frame a worker sends after starting: which slot it serves
    /// and its OS pid.
    Hello {
        /// Worker slot index assigned by the parent.
        slot: u64,
        /// The worker process's pid.
        pid: u64,
    },
    /// Run one task. The payload is an opaque descriptor the worker-side
    /// handler decodes.
    Task {
        /// Task id assigned by the parent (unique per pool lifetime).
        task: u64,
        /// Opaque task descriptor.
        payload: Vec<u8>,
    },
    /// A task completed; the payload is the opaque result blob.
    TaskOk {
        /// Id of the completed task.
        task: u64,
        /// The worker's peak RSS (`VmHWM`) in bytes at completion time.
        vm_hwm_bytes: u64,
        /// Opaque task result.
        payload: Vec<u8>,
    },
    /// A task's handler failed (retryable at the parent — the worker
    /// itself is still healthy).
    TaskErr {
        /// Id of the failed task.
        task: u64,
        /// The handler's error message.
        message: String,
    },
    /// Periodic liveness signal carrying the worker's peak RSS and
    /// consumed CPU time.
    Heartbeat {
        /// Monotonic heartbeat sequence number.
        seq: u64,
        /// The worker's peak RSS (`VmHWM`) in bytes.
        vm_hwm_bytes: u64,
        /// The worker's CPU time (utime + stime) in microseconds.
        cpu_time_us: u64,
    },
    /// Ask the worker to exit cleanly.
    Shutdown,
    /// Spans a worker recorded while handling one task, sent immediately
    /// before the task's [`Frame::TaskOk`] so the parent can rebase them
    /// onto its own clock (`Instant`s do not cross process boundaries,
    /// so span times are µs offsets from the start of task handling).
    Telemetry {
        /// Id of the task the spans belong to.
        task: u64,
        /// The worker's CPU time (utime + stime) in microseconds.
        cpu_time_us: u64,
        /// The spans, offsets relative to task-handling start.
        spans: Vec<WireSpan>,
    },
}

/// One serialized child-side span inside a [`Frame::Telemetry`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name (stage label, kernel step, …).
    pub name: String,
    /// Span kind: 0 = phase, 1 = stage, 2 = task.
    pub kind: u8,
    /// Start offset from the beginning of task handling, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
    /// Rendering lane within the worker process.
    pub lane: u64,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Task { .. } => 2,
            Frame::TaskOk { .. } => 3,
            Frame::TaskErr { .. } => 4,
            Frame::Heartbeat { .. } => 5,
            Frame::Shutdown => 6,
            Frame::Telemetry { .. } => 7,
        }
    }
}

/// Bounds-checked little-endian reader over a frame payload (the same
/// pattern as the `DBSC` decoder: every read returns an error past the
/// end instead of panicking).
struct PayloadReader<'a> {
    data: &'a [u8],
}

impl<'a> PayloadReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IpcError> {
        let head = self.data.get(..n).ok_or(IpcError::Truncated)?;
        self.data = self.data.get(n..).ok_or(IpcError::Truncated)?;
        Ok(head)
    }

    fn u64_le(&mut self) -> Result<u64, IpcError> {
        let bytes = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    fn u8(&mut self) -> Result<u8, IpcError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn string(&mut self) -> Result<String, IpcError> {
        let len = self.u64_le()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| IpcError::Malformed {
            message: "span name is not valid UTF-8".to_owned(),
        })
    }

    fn rest(self) -> Vec<u8> {
        self.data.to_vec()
    }

    fn finish(self) -> Result<(), IpcError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(IpcError::Malformed {
                message: format!("{} unexpected trailing byte(s)", self.data.len()),
            })
        }
    }
}

/// Encodes and writes one frame, flushing the writer so heartbeats and
/// results reach the peer immediately (pipes are the transport; a frame
/// parked in a `BufWriter` is a frame the deadline checker never sees).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), IpcError> {
    let mut payload = Vec::new();
    match frame {
        Frame::Hello { slot, pid } => {
            payload.extend_from_slice(&slot.to_le_bytes());
            payload.extend_from_slice(&pid.to_le_bytes());
        }
        Frame::Task { task, payload: p } => {
            payload.extend_from_slice(&task.to_le_bytes());
            payload.extend_from_slice(p);
        }
        Frame::TaskOk {
            task,
            vm_hwm_bytes,
            payload: p,
        } => {
            payload.extend_from_slice(&task.to_le_bytes());
            payload.extend_from_slice(&vm_hwm_bytes.to_le_bytes());
            payload.extend_from_slice(p);
        }
        Frame::TaskErr { task, message } => {
            payload.extend_from_slice(&task.to_le_bytes());
            payload.extend_from_slice(message.as_bytes());
        }
        Frame::Heartbeat {
            seq,
            vm_hwm_bytes,
            cpu_time_us,
        } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.extend_from_slice(&vm_hwm_bytes.to_le_bytes());
            payload.extend_from_slice(&cpu_time_us.to_le_bytes());
        }
        Frame::Shutdown => {}
        Frame::Telemetry {
            task,
            cpu_time_us,
            spans,
        } => {
            payload.extend_from_slice(&task.to_le_bytes());
            payload.extend_from_slice(&cpu_time_us.to_le_bytes());
            payload.extend_from_slice(&(spans.len() as u64).to_le_bytes());
            for span in spans {
                payload.extend_from_slice(&(span.name.len() as u64).to_le_bytes());
                payload.extend_from_slice(span.name.as_bytes());
                payload.push(span.kind);
                payload.extend_from_slice(&span.start_us.to_le_bytes());
                payload.extend_from_slice(&span.dur_us.to_le_bytes());
                payload.extend_from_slice(&span.lane.to_le_bytes());
            }
        }
    }
    if payload.len() > MAX_PAYLOAD {
        return Err(IpcError::Malformed {
            message: format!("payload of {} bytes exceeds the frame cap", payload.len()),
        });
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    let (magic_dst, rest) = header.split_at_mut(FRAME_MAGIC.len());
    magic_dst.copy_from_slice(FRAME_MAGIC);
    if let [version, kind, len @ ..] = rest {
        *version = FRAME_VERSION;
        *kind = frame.kind();
        len.copy_from_slice(&(payload.len() as u32).to_le_bytes());
    }
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes. Returns `Ok(false)` when the stream
/// is already at EOF (no bytes read), `Err(Truncated)` when it ends
/// mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, IpcError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let Some(dst) = buf.get_mut(filled..) else {
            break;
        };
        match r.read(dst) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(IpcError::Truncated)
                };
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(IpcError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads and decodes the next frame. `Ok(None)` is a clean EOF at a
/// frame boundary — the peer closed the pipe between frames (a worker
/// that exited, or a parent that hung up).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, IpcError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    let (magic, rest) = header.split_at(FRAME_MAGIC.len());
    if magic != FRAME_MAGIC {
        return Err(IpcError::BadMagic);
    }
    let [version, kind, len @ ..] = rest else {
        return Err(IpcError::Truncated);
    };
    if *version != FRAME_VERSION {
        return Err(IpcError::UnsupportedVersion { found: *version });
    }
    let mut len_buf = [0u8; 4];
    len_buf.copy_from_slice(len);
    let payload_len = u32::from_le_bytes(len_buf) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(IpcError::Malformed {
            message: format!("payload length {payload_len} exceeds the frame cap"),
        });
    }
    let mut payload = vec![0u8; payload_len];
    if !read_exact_or_eof(r, &mut payload)? && payload_len > 0 {
        return Err(IpcError::Truncated);
    }
    decode_payload(*kind, &payload).map(Some)
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, IpcError> {
    let mut r = PayloadReader::new(payload);
    match kind {
        1 => {
            let slot = r.u64_le()?;
            let pid = r.u64_le()?;
            r.finish()?;
            Ok(Frame::Hello { slot, pid })
        }
        2 => {
            let task = r.u64_le()?;
            Ok(Frame::Task {
                task,
                payload: r.rest(),
            })
        }
        3 => {
            let task = r.u64_le()?;
            let vm_hwm_bytes = r.u64_le()?;
            Ok(Frame::TaskOk {
                task,
                vm_hwm_bytes,
                payload: r.rest(),
            })
        }
        4 => {
            let task = r.u64_le()?;
            let message = String::from_utf8(r.rest()).map_err(|_| IpcError::Malformed {
                message: "task error message is not valid UTF-8".to_owned(),
            })?;
            Ok(Frame::TaskErr { task, message })
        }
        5 => {
            let seq = r.u64_le()?;
            let vm_hwm_bytes = r.u64_le()?;
            let cpu_time_us = r.u64_le()?;
            r.finish()?;
            Ok(Frame::Heartbeat {
                seq,
                vm_hwm_bytes,
                cpu_time_us,
            })
        }
        6 => {
            r.finish()?;
            Ok(Frame::Shutdown)
        }
        7 => {
            let task = r.u64_le()?;
            let cpu_time_us = r.u64_le()?;
            let count = r.u64_le()? as usize;
            // The count is bounded by the already-validated payload
            // length; each span needs ≥ 33 bytes, so a lying count
            // fails on the first short read, never on allocation.
            let mut spans = Vec::new();
            for _ in 0..count {
                let name = r.string()?;
                let kind = r.u8()?;
                let start_us = r.u64_le()?;
                let dur_us = r.u64_le()?;
                let lane = r.u64_le()?;
                spans.push(WireSpan {
                    name,
                    kind,
                    start_us,
                    dur_us,
                    lane,
                });
            }
            r.finish()?;
            Ok(Frame::Telemetry {
                task,
                cpu_time_us,
                spans,
            })
        }
        found => Err(IpcError::UnknownKind { found }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).unwrap();
        let mut cursor = Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().unwrap();
        // The stream must be exactly one frame long.
        assert!(read_frame(&mut cursor).unwrap().is_none());
        got
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = vec![
            Frame::Hello { slot: 3, pid: 4242 },
            Frame::Task {
                task: 7,
                payload: vec![1, 2, 3, 255],
            },
            Frame::Task {
                task: 8,
                payload: Vec::new(),
            },
            Frame::TaskOk {
                task: 7,
                vm_hwm_bytes: 123_456,
                payload: vec![9; 1000],
            },
            Frame::TaskErr {
                task: 7,
                message: "cell range out of bounds".to_owned(),
            },
            Frame::Heartbeat {
                seq: 99,
                vm_hwm_bytes: 1 << 20,
                cpu_time_us: 250_000,
            },
            Frame::Shutdown,
            Frame::Telemetry {
                task: 7,
                cpu_time_us: 123_456,
                spans: vec![
                    WireSpan {
                        name: "layout build".to_owned(),
                        kind: 1,
                        start_us: 0,
                        dur_us: 1500,
                        lane: 0,
                    },
                    WireSpan {
                        name: "shard kernel".to_owned(),
                        kind: 2,
                        start_us: 1500,
                        dur_us: 900,
                        lane: 1,
                    },
                ],
            },
            Frame::Telemetry {
                task: 8,
                cpu_time_us: 0,
                spans: Vec::new(),
            },
        ];
        for frame in frames {
            assert_eq!(round_trip(&frame), frame, "{frame:?}");
        }
    }

    #[test]
    fn frames_concatenate_into_a_stream() {
        let mut buf = Vec::new();
        let a = Frame::Hello { slot: 0, pid: 1 };
        let b = Frame::Heartbeat {
            seq: 1,
            vm_hwm_bytes: 10,
            cpu_time_us: 20,
        };
        let c = Frame::Shutdown;
        for f in [&a, &b, &c] {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(a));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(b));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(c));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Shutdown).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(IpcError::BadMagic)
        ));
    }

    #[test]
    fn version_skew_reports_the_found_byte() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Shutdown).unwrap();
        buf[4] = FRAME_VERSION + 1;
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(err, IpcError::UnsupportedVersion { found } if found == FRAME_VERSION + 1),
            "{err:?}"
        );
        let message = err.to_string();
        assert!(
            message.contains(&format!("version {}", FRAME_VERSION + 1)),
            "{message}"
        );
        assert!(
            message.contains(&format!("speaks version {FRAME_VERSION}")),
            "{message}"
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Shutdown).unwrap();
        buf[5] = 250;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(IpcError::UnknownKind { found: 250 })
        ));
    }

    #[test]
    fn truncation_mid_header_and_mid_payload_is_detected() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Task {
                task: 1,
                payload: vec![1, 2, 3, 4],
            },
        )
        .unwrap();
        // Mid-header.
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf[..5])),
            Err(IpcError::Truncated)
        ));
        // Mid-payload.
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf[..buf.len() - 2])),
            Err(IpcError::Truncated)
        ));
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert_eq!(read_frame(&mut Cursor::new(Vec::new())).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Shutdown).unwrap();
        let len_at = FRAME_MAGIC.len() + 2;
        buf[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(IpcError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        // A Heartbeat with extra bytes past its three fields.
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Heartbeat {
                seq: 0,
                vm_hwm_bytes: 0,
                cpu_time_us: 0,
            },
        )
        .unwrap();
        // Patch the length up and append a byte.
        let len_at = FRAME_MAGIC.len() + 2;
        buf[len_at..len_at + 4].copy_from_slice(&25u32.to_le_bytes());
        buf.push(0xEE);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(IpcError::Malformed { .. })
        ));
    }

    #[test]
    fn telemetry_with_a_lying_span_count_is_truncated_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Telemetry {
                task: 1,
                cpu_time_us: 0,
                spans: vec![WireSpan {
                    name: "k".to_owned(),
                    kind: 2,
                    start_us: 0,
                    dur_us: 1,
                    lane: 0,
                }],
            },
        )
        .unwrap();
        // Inflate the span count (first u64 after task + cpu fields).
        let count_at = FRAME_HEADER_LEN + 16;
        buf[count_at..count_at + 8].copy_from_slice(&1_000_000u64.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(IpcError::Truncated)
        ));
    }
}
