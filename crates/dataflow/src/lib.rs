//! A Spark-like, partition-isolated dataflow engine.
//!
//! DBSCOUT (Corain, Garza, Asudeh — ICDE 2021) is specified as a sequence of
//! Spark transformations (`MAP`, `FLATMAP`, `FILTER`, `REDUCEBYKEY`,
//! `GROUPBYKEY`, `JOIN`, `UNION`, `BROADCAST`, `FOREACH`) executed by
//! independent executors. This crate is the substrate that stands in for
//! Apache Spark in this reproduction: a multi-threaded engine in which
//!
//! * a [`Dataset<T>`] is a list of *partitions* (`Vec<T>` each);
//! * every transformation runs one task per partition on a worker pool;
//! * a task can only observe **its own partition** plus read-only
//!   [`Broadcast`] variables — the same isolation contract as a Spark
//!   executor, so algorithms keep the same data-movement structure
//!   (shuffles for `reduceByKey`/`join`, broadcast for small maps);
//! * key-based operations repartition data with a **deterministic** hash
//!   (SipHash-1-3 with fixed keys), so runs are reproducible across
//!   processes.
//!
//! Unlike Spark the engine is *eager*: each transformation materialises its
//! output partitions immediately. Laziness is an optimisation for
//! pipelining on real clusters; it does not change what data moves where,
//! which is what the DBSCOUT experiments measure. Fault tolerance, on the
//! other hand, is provided directly at the task level: a failed or
//! panicked partition task is re-queued up to the context's
//! `max_task_retries` budget, straggler tasks can be duplicated
//! speculatively ([`SpeculationConfig`]), and a seeded [`FaultPlan`]
//! injects deterministic faults for chaos tests.
//!
//! # Example
//!
//! ```
//! use dbscout_dataflow::ExecutionContext;
//!
//! let ctx = ExecutionContext::builder().workers(4).build();
//! let data = ctx.parallelize((0u64..1000).collect::<Vec<_>>(), 8);
//! let sum_of_squares = data
//!     .map(|x| (x % 10, x * x))
//!     .unwrap()
//!     .reduce_by_key(|a, b| a + b)
//!     .unwrap()
//!     .collect()
//!     .unwrap();
//! assert_eq!(sum_of_squares.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic
    )
)]

pub mod broadcast;
pub mod context;
pub mod dataset;
pub mod error;
pub mod executor;
pub mod fault;
pub mod ipc;
pub mod metrics;
pub mod ops;
pub mod pair;
pub mod shuffle;
pub mod worker;

pub use broadcast::Broadcast;
pub use context::{ContextConfig, ExecutionBackend, ExecutionContext, ExecutionContextBuilder};
pub use dataset::Dataset;
pub use error::{EngineError, Result};
pub use executor::{run_exclusive_tasks, SpeculationConfig, StageOptions};
pub use fault::{FaultKind, FaultPlan, FaultPlanBuilder};
pub use ipc::{IpcError, WireSpan};
pub use metrics::{EngineMetrics, MetricsSnapshot, StageRecord};
pub use worker::{
    serve_worker, ProcessPool, ProcessPoolConfig, ProcessPoolStats, StageOutcome, TaskSpans,
    WorkerSpec, WorkerStats, DEFAULT_RESPAWN_BUDGET, ENV_WORKER_SLOT,
};
