//! Additional dataset operations beyond the core DBSCOUT vocabulary:
//! `DISTINCT`, `AGGREGATE`, `ZIPWITHINDEX`, reductions. Provided for
//! completeness of the Spark-substitute substrate (downstream users of
//! the engine want more than the five DBSCOUT phases).

use std::hash::Hash;
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::error::Result;
use crate::shuffle::{drain_by_key_hash, gather, scatter, DetHashMap};

impl<T: Send + Sync> Dataset<T> {
    /// Removes duplicate records via a combining shuffle (`DISTINCT`).
    pub fn distinct(&self) -> Result<Dataset<T>>
    where
        T: Hash + Eq + Clone,
    {
        let num_partitions = self.ctx().default_partitions();
        let ctx = Arc::clone(self.ctx());
        // Map side: local dedup, scatter by hash.
        let tasks: Vec<_> = self
            .partitions()
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                move || {
                    let mut seen: DetHashMap<T, ()> = DetHashMap::default();
                    for r in part.iter() {
                        seen.entry(r.clone()).or_insert(());
                    }
                    scatter(drain_by_key_hash(seen), num_partitions)
                }
            })
            .collect();
        let buckets = ctx.run_stage("distinct[map]", tasks)?;
        let shuffled: u64 = buckets
            .iter()
            .flat_map(|b| b.iter().map(|v| v.len() as u64))
            .sum();
        ctx.metrics()
            .attach_shuffle(shuffled, shuffled * std::mem::size_of::<T>() as u64);
        let inputs = gather(buckets, num_partitions);
        let tasks: Vec<_> = inputs
            .into_iter()
            .map(|records| {
                move || {
                    let mut seen: DetHashMap<T, ()> = DetHashMap::default();
                    for (k, ()) in records.iter().cloned() {
                        seen.entry(k).or_insert(());
                    }
                    drain_by_key_hash(seen)
                        .into_iter()
                        .map(|(k, ())| k)
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        let out = ctx.run_stage("distinct[reduce]", tasks)?;
        let records_out: u64 = out.iter().map(|p| p.len() as u64).sum();
        ctx.metrics().attach_io(self.count() as u64, records_out);
        Ok(Dataset::from_partitions(ctx, out))
    }

    /// Folds every partition with `fold`, then combines the per-partition
    /// results with `combine` on the driver (`AGGREGATE`).
    pub fn aggregate<A, FF, CF>(&self, zero: A, fold: FF, combine: CF) -> Result<A>
    where
        A: Send + Sync + Clone,
        FF: Fn(A, &T) -> A + Send + Sync,
        CF: Fn(A, A) -> A,
    {
        let tasks: Vec<_> = self
            .partitions()
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                let zero = zero.clone();
                let fold = &fold;
                // Clone the zero per attempt so a retried task starts from
                // a fresh accumulator.
                move || part.iter().fold(zero.clone(), fold)
            })
            .collect();
        let partials = self.ctx().run_stage("aggregate", tasks)?;
        self.ctx()
            .metrics()
            .attach_io(self.count() as u64, self.num_partitions() as u64);
        Ok(partials.into_iter().fold(zero, combine))
    }

    /// Pairs every record with its global index in partition order
    /// (`ZIPWITHINDEX`).
    pub fn zip_with_index(&self) -> Result<Dataset<(u64, T)>>
    where
        T: Clone,
    {
        let sizes = self.partition_sizes();
        let mut starts = Vec::with_capacity(sizes.len());
        let mut acc = 0u64;
        for s in sizes {
            starts.push(acc);
            acc += s as u64;
        }
        let ctx = Arc::clone(self.ctx());
        let tasks: Vec<_> = self
            .partitions()
            .iter()
            .zip(starts)
            .map(|(part, start)| {
                let part = Arc::clone(part);
                move || {
                    part.iter()
                        .enumerate()
                        .map(|(i, r)| (start + i as u64, r.clone()))
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        let out = ctx.run_stage("zip_with_index", tasks)?;
        ctx.metrics()
            .attach_io(self.count() as u64, self.count() as u64);
        Ok(Dataset::from_partitions(ctx, out))
    }

    /// The minimum record under `key`, or `None` for an empty dataset.
    pub fn min_by_key<K, F>(&self, key: F) -> Result<Option<T>>
    where
        T: Clone,
        K: PartialOrd,
        F: Fn(&T) -> K + Send + Sync,
    {
        self.aggregate(
            None::<T>,
            |best, r| match best {
                Some(b) if key(&b) <= key(r) => Some(b),
                _ => Some(r.clone()),
            },
            |a, b| match (a, b) {
                (Some(a), Some(b)) => {
                    if key(&a) <= key(&b) {
                        Some(a)
                    } else {
                        Some(b)
                    }
                }
                (x, None) | (None, x) => x,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::ExecutionContext;

    fn ctx() -> std::sync::Arc<ExecutionContext> {
        ExecutionContext::builder()
            .workers(4)
            .default_partitions(5)
            .build()
    }

    #[test]
    fn distinct_removes_duplicates() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![1, 2, 2, 3, 1, 3, 3, 3], 3);
        let out = ds.distinct().unwrap().collect_sorted().unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn distinct_on_already_unique() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..50).collect::<Vec<_>>(), 4);
        assert_eq!(ds.distinct().unwrap().count(), 50);
    }

    #[test]
    fn aggregate_sums() {
        let ctx = ctx();
        let ds = ctx.parallelize((1..=100i64).collect::<Vec<_>>(), 7);
        let sum = ds.aggregate(0i64, |a, &x| a + x, |a, b| a + b).unwrap();
        assert_eq!(sum, 5050);
    }

    #[test]
    fn aggregate_on_empty() {
        let ctx = ctx();
        let ds = ctx.parallelize(Vec::<i64>::new(), 3);
        assert_eq!(
            ds.aggregate(7i64, |a, &x| a + x, |a, b| a + b).unwrap(),
            7 * 4
        );
        // (zero is folded once per partition plus once on the driver —
        // the Spark contract; callers use a true identity element.)
    }

    #[test]
    fn zip_with_index_is_global_and_ordered() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec!["a", "b", "c", "d", "e"], 2);
        let out = ds.zip_with_index().unwrap().collect().unwrap();
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c"), (3, "d"), (4, "e")]);
    }

    #[test]
    fn min_by_key_finds_minimum() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![5, 3, 9, 1, 7], 3);
        assert_eq!(ds.min_by_key(|&x| x).unwrap(), Some(1));
        let empty = ctx.parallelize(Vec::<i32>::new(), 2);
        assert_eq!(empty.min_by_key(|&x| x).unwrap(), None);
    }
}
