//! The execution context: worker count, defaults, and metrics.

use std::sync::Arc;

use crate::broadcast::Broadcast;
use crate::dataset::Dataset;
use crate::metrics::EngineMetrics;

/// Shared engine state: the "driver" of this mini cluster.
///
/// Holds the worker count (how many partition tasks run concurrently — the
/// analogue of total executor cores), the default partition count for new
/// datasets, and the [`EngineMetrics`] counters.
///
/// Contexts are cheap to clone via [`Arc`] inside datasets; create one per
/// logical cluster configuration.
#[derive(Debug)]
pub struct ExecutionContext {
    workers: usize,
    default_partitions: usize,
    metrics: EngineMetrics,
}

impl ExecutionContext {
    /// Starts building a context.
    pub fn builder() -> ExecutionContextBuilder {
        ExecutionContextBuilder::default()
    }

    /// A context with one worker per available CPU.
    pub fn with_all_cores() -> Arc<Self> {
        Self::builder().build()
    }

    /// Number of concurrently running tasks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Partition count used when the caller does not specify one.
    pub fn default_partitions(&self) -> usize {
        self.default_partitions
    }

    /// The engine counters.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Broadcasts a read-only value to all workers (metered).
    pub fn broadcast<T>(self: &Arc<Self>, value: T) -> Broadcast<T> {
        self.metrics.record_broadcast();
        Broadcast::new(value)
    }

    /// Distributes `data` into `num_partitions` contiguous chunks of nearly
    /// equal size (Spark's `parallelize`).
    pub fn parallelize<T: Send + Sync>(
        self: &Arc<Self>,
        data: Vec<T>,
        num_partitions: usize,
    ) -> Dataset<T> {
        let num_partitions = num_partitions.max(1);
        let n = data.len();
        let base = n / num_partitions;
        let extra = n % num_partitions;
        let mut partitions = Vec::with_capacity(num_partitions);
        let mut iter = data.into_iter();
        for p in 0..num_partitions {
            let size = base + usize::from(p < extra);
            partitions.push(iter.by_ref().take(size).collect());
        }
        Dataset::from_partitions(Arc::clone(self), partitions)
    }
}

/// Builder for [`ExecutionContext`].
#[derive(Debug, Clone, Default)]
pub struct ExecutionContextBuilder {
    workers: Option<usize>,
    default_partitions: Option<usize>,
}

impl ExecutionContextBuilder {
    /// Sets the number of worker threads (defaults to available CPUs).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the default partition count (defaults to `2 * workers`).
    pub fn default_partitions(mut self, partitions: usize) -> Self {
        self.default_partitions = Some(partitions.max(1));
        self
    }

    /// Finalises the context.
    pub fn build(self) -> Arc<ExecutionContext> {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let default_partitions = self.default_partitions.unwrap_or(workers * 2);
        Arc::new(ExecutionContext {
            workers,
            default_partitions,
            metrics: EngineMetrics::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let ctx = ExecutionContext::builder().build();
        assert!(ctx.workers() >= 1);
        assert_eq!(ctx.default_partitions(), ctx.workers() * 2);
    }

    #[test]
    fn builder_overrides() {
        let ctx = ExecutionContext::builder()
            .workers(3)
            .default_partitions(17)
            .build();
        assert_eq!(ctx.workers(), 3);
        assert_eq!(ctx.default_partitions(), 17);
    }

    #[test]
    fn builder_clamps_zero() {
        let ctx = ExecutionContext::builder()
            .workers(0)
            .default_partitions(0)
            .build();
        assert_eq!(ctx.workers(), 1);
        assert_eq!(ctx.default_partitions(), 1);
    }

    #[test]
    fn parallelize_balances_partitions() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 3);
        let sizes = ds.partition_sizes();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(ds.collect().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallelize_more_partitions_than_items() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize(vec![1, 2], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.count(), 2);
    }

    #[test]
    fn parallelize_empty() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize(Vec::<i32>::new(), 4);
        assert_eq!(ds.count(), 0);
        assert_eq!(ds.num_partitions(), 4);
    }

    #[test]
    fn parallelize_zero_partitions_clamped() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize(vec![1, 2, 3], 0);
        assert_eq!(ds.num_partitions(), 1);
    }
}
