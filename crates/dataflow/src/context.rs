//! The execution context: worker count, defaults, failure policy, and
//! metrics.

use std::fmt;
use std::sync::{Arc, Mutex};

use dbscout_telemetry::Recorder;

use crate::broadcast::Broadcast;
use crate::dataset::Dataset;
use crate::error::{EngineError, Result};
use crate::executor::{self, lock_unpoisoned, SpeculationConfig, StageOptions};
use crate::fault::FaultPlan;
use crate::metrics::{EngineMetrics, StageRecord};
use crate::worker::{ProcessPool, ProcessPoolConfig, ProcessPoolStats, WorkerSpec};

/// Which failure domain executes stage tasks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExecutionBackend {
    /// Threads in this process (the default): tasks share an address
    /// space; a panicking task is caught and retried, but a task that
    /// aborts the process takes the whole job down.
    #[default]
    InProcess,
    /// Shared-nothing child processes: tasks are serialized descriptors
    /// shipped over pipes to `workers` worker processes, and a worker
    /// that dies (SIGKILL, OOM, wedge) is respawned and its work
    /// re-dispatched — see [`crate::worker`] for the recovery model.
    Process {
        /// Number of worker processes.
        workers: usize,
    },
}

/// Default task-retry budget: a task may fail twice and still succeed on
/// its third attempt (the spirit of Spark's `spark.task.maxFailures = 4`,
/// scaled to a single-process engine).
pub const DEFAULT_TASK_RETRIES: usize = 2;

/// The scheduling-relevant shape of an [`ExecutionContext`], carried by
/// [`EngineError::ContextMismatch`] so mixed-context errors are
/// actionable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextConfig {
    /// Number of concurrently running tasks.
    pub workers: usize,
    /// Partition count used when the caller does not specify one.
    pub default_partitions: usize,
}

impl fmt::Display for ContextConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} workers / {} default partitions",
            self.workers, self.default_partitions
        )
    }
}

/// Shared engine state: the "driver" of this mini cluster.
///
/// Holds the worker count (how many partition tasks run concurrently — the
/// analogue of total executor cores), the default partition count for new
/// datasets, the failure policy (task-retry budget, speculation, fault
/// injection), and the [`EngineMetrics`] counters.
///
/// Contexts are cheap to clone via [`Arc`] inside datasets; create one per
/// logical cluster configuration.
pub struct ExecutionContext {
    workers: usize,
    default_partitions: usize,
    max_task_retries: usize,
    speculation: Option<SpeculationConfig>,
    fault_plan: Option<FaultPlan>,
    /// Seed perturbing work-queue pop order in every stage (schedule
    /// exploration); `None` = FIFO.
    schedule_seed: Option<u64>,
    /// Caller-visible phase label (e.g. `"core-point pass"`) prefixed onto
    /// every stage name while set.
    stage: Mutex<Option<String>>,
    backend: ExecutionBackend,
    worker_spec: Option<WorkerSpec>,
    respawn_budget: usize,
    /// The process-worker pool, spawned lazily on the first process
    /// stage. Taken out of the mutex for the duration of a stage (the
    /// guard is never held across worker I/O) and put back after.
    pool: Mutex<Option<ProcessPool>>,
    metrics: EngineMetrics,
    /// Span sink installed at build time; `None` (the default) keeps the
    /// engine span-free — a single branch per stage, nothing per task.
    recorder: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for ExecutionContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionContext")
            .field("workers", &self.workers)
            .field("default_partitions", &self.default_partitions)
            .field("max_task_retries", &self.max_task_retries)
            .field("speculation", &self.speculation)
            .field("fault_plan", &self.fault_plan)
            .field("schedule_seed", &self.schedule_seed)
            .field("backend", &self.backend)
            .field("recorder", &self.recorder.is_some())
            .finish_non_exhaustive()
    }
}

impl ExecutionContext {
    /// Starts building a context.
    pub fn builder() -> ExecutionContextBuilder {
        ExecutionContextBuilder::default()
    }

    /// A context with one worker per available CPU.
    pub fn with_all_cores() -> Arc<Self> {
        Self::builder().build()
    }

    /// Number of concurrently running tasks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Partition count used when the caller does not specify one.
    pub fn default_partitions(&self) -> usize {
        self.default_partitions
    }

    /// How many times a failed task is re-queued before the job fails.
    pub fn max_task_retries(&self) -> usize {
        self.max_task_retries
    }

    /// The scheduling-relevant shape of this context.
    pub fn config(&self) -> ContextConfig {
        ContextConfig {
            workers: self.workers,
            default_partitions: self.default_partitions,
        }
    }

    /// The engine counters.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The span sink installed at build time, if any. Detectors use this
    /// to emit their phase spans into the same trace as the engine's
    /// task spans.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.recorder.as_ref()
    }

    /// Labels all stages run until [`clear_stage`](Self::clear_stage) with
    /// a caller-visible phase name, so errors and fault plans can name the
    /// algorithm phase (e.g. `"core-point pass"`) instead of the engine
    /// primitive alone.
    pub fn set_stage(&self, phase: impl Into<String>) {
        *lock_unpoisoned(&self.stage) = Some(phase.into());
    }

    /// Removes the phase label set by [`set_stage`](Self::set_stage).
    pub fn clear_stage(&self) {
        *lock_unpoisoned(&self.stage) = None;
    }

    /// The currently set phase label, if any.
    pub fn current_stage(&self) -> Option<String> {
        lock_unpoisoned(&self.stage).clone()
    }

    /// Runs one stage of `tasks` under this context's failure policy.
    /// `op` names the engine primitive; the full stage name is
    /// `"{phase}:{op}"` while a phase label is set.
    pub(crate) fn run_stage<T, F>(&self, op: &str, tasks: Vec<F>) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn() -> T + Send + Sync,
    {
        let label = match lock_unpoisoned(&self.stage).as_deref() {
            Some(phase) => format!("{phase}:{op}"),
            None => op.to_owned(),
        };
        let opts = StageOptions {
            workers: self.workers,
            max_task_retries: self.max_task_retries,
            speculation: self.speculation,
            fault_plan: self.fault_plan.as_ref(),
            metrics: Some(&self.metrics),
            recorder: self.recorder.as_deref(),
            schedule_seed: self.schedule_seed,
            stage: &label,
        };
        executor::run_stage(&opts, tasks)
    }

    /// Which failure domain executes stage tasks.
    pub fn backend(&self) -> &ExecutionBackend {
        &self.backend
    }

    /// Whether stages run on the process-worker backend.
    pub fn is_process_backend(&self) -> bool {
        matches!(self.backend, ExecutionBackend::Process { .. })
    }

    /// Runs one stage of serialized task descriptors on the
    /// process-worker pool, returning results in task order. The pool is
    /// spawned lazily on the first call and reused (with its respawn
    /// budget and accumulated statistics) across stages. `op` names the
    /// stage exactly as [`run_stage`](Self::run_stage) would.
    ///
    /// Errors with [`EngineError::Internal`] when the context was not
    /// built with [`ExecutionBackend::Process`] and a worker spec.
    pub fn run_process_stage(&self, op: &str, tasks: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>> {
        let label = match lock_unpoisoned(&self.stage).as_deref() {
            Some(phase) => format!("{phase}:{op}"),
            None => op.to_owned(),
        };
        let ExecutionBackend::Process { workers } = self.backend else {
            return Err(EngineError::Internal {
                message: format!(
                    "stage {label:?} asked for process workers on an in-process context"
                ),
            });
        };
        // Take the pool out of the mutex for the stage's duration so no
        // lock is held across worker I/O (and a second caller gets a
        // clean error instead of a deadlock).
        let mut pool = match lock_unpoisoned(&self.pool).take() {
            Some(pool) => pool,
            None => {
                let spec = self
                    .worker_spec
                    .clone()
                    .ok_or_else(|| EngineError::Internal {
                        message: "process backend requires a worker spec (builder.worker_spec)"
                            .to_owned(),
                    })?;
                ProcessPool::spawn(
                    spec,
                    ProcessPoolConfig {
                        workers,
                        respawn_budget: self.respawn_budget,
                        max_task_retries: self.max_task_retries,
                        fault_plan: self.fault_plan.clone(),
                    },
                )?
            }
        };
        let mut record = StageRecord::new(&label);
        record.tasks = tasks.len() as u64;
        // Deaths and respawns are worth recording even when the stage
        // fails — the failed stage is exactly the interesting one — so
        // they are derived from the pool's lifetime counters rather than
        // the (success-only) stage outcome.
        let before = pool.stats();
        let outcome = pool.run_stage(&label, tasks, self.recorder.as_deref());
        record.duration = record.started.elapsed();
        let after = pool.stats();
        record.worker_kills = after.worker_kills.saturating_sub(before.worker_kills);
        record.worker_respawns = after.worker_respawns.saturating_sub(before.worker_respawns);
        record.task_reassignments = after
            .task_reassignments
            .saturating_sub(before.task_reassignments);
        if let Ok(o) = &outcome {
            record.task_retries = o.task_retries;
        }
        self.metrics.push_stage(record);
        // Put the pool back even on error: its statistics stay readable
        // and later stages may still run on the survivors.
        *lock_unpoisoned(&self.pool) = Some(pool);
        outcome.map(|o| o.results)
    }

    /// Lifetime statistics of the process-worker pool, if one has been
    /// spawned.
    pub fn process_stats(&self) -> Option<ProcessPoolStats> {
        lock_unpoisoned(&self.pool).as_ref().map(ProcessPool::stats)
    }

    /// Shuts the process-worker pool down (idempotent; the pool also
    /// shuts down when the context drops).
    pub fn shutdown_process_pool(&self) {
        if let Some(mut pool) = lock_unpoisoned(&self.pool).take() {
            pool.shutdown();
        }
    }

    /// The error for mixing datasets of `self` and `other`.
    pub(crate) fn mismatch_with(&self, other: &ExecutionContext) -> EngineError {
        EngineError::ContextMismatch {
            left: self.config(),
            right: other.config(),
        }
    }

    /// Broadcasts a read-only value to all workers (metered).
    pub fn broadcast<T>(self: &Arc<Self>, value: T) -> Broadcast<T> {
        self.metrics.record_broadcast();
        Broadcast::new(value)
    }

    /// Distributes `data` into `num_partitions` contiguous chunks of nearly
    /// equal size (Spark's `parallelize`).
    pub fn parallelize<T: Send + Sync>(
        self: &Arc<Self>,
        data: Vec<T>,
        num_partitions: usize,
    ) -> Dataset<T> {
        let num_partitions = num_partitions.max(1);
        let n = data.len();
        let base = n / num_partitions;
        let extra = n % num_partitions;
        let mut partitions = Vec::with_capacity(num_partitions);
        let mut iter = data.into_iter();
        for p in 0..num_partitions {
            let size = base + usize::from(p < extra);
            partitions.push(iter.by_ref().take(size).collect());
        }
        Dataset::from_partitions(Arc::clone(self), partitions)
    }

    /// Distributes a *batched* stream of `total` items into
    /// `num_partitions` contiguous chunks — the out-of-core counterpart
    /// of [`Self::parallelize`].
    ///
    /// Partition boundaries are computed from `total` exactly as
    /// `parallelize` computes them, then batches are drained in order
    /// across those boundaries, so the resulting [`Dataset`] is
    /// element-identical to `parallelize(flattened, num_partitions)` for
    /// any batch shape — without ever holding more than the partitions
    /// being filled plus one batch. Items beyond `total` land in the last
    /// partition; a short stream simply yields short partitions (callers
    /// that know `total` exactly get the canonical layout).
    pub fn parallelize_batches<T: Send + Sync>(
        self: &Arc<Self>,
        total: usize,
        batches: impl IntoIterator<Item = Vec<T>>,
        num_partitions: usize,
    ) -> Dataset<T> {
        let num_partitions = num_partitions.max(1);
        let base = total / num_partitions;
        let extra = total % num_partitions;
        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(num_partitions);
        let mut sizes = (0..num_partitions).map(|p| base + usize::from(p < extra));
        let mut capacity = sizes.next().unwrap_or(0);
        partitions.push(Vec::with_capacity(capacity));
        for batch in batches {
            for item in batch {
                while let Some(current) = partitions.last_mut() {
                    if current.len() < capacity {
                        current.push(item);
                        break;
                    }
                    match sizes.next() {
                        Some(next) => {
                            capacity = next;
                            partitions.push(Vec::with_capacity(next));
                        }
                        None => {
                            // Stream ran past `total`: overflow into the
                            // last partition rather than dropping data.
                            current.push(item);
                            break;
                        }
                    }
                }
            }
        }
        // A short stream leaves sizes unconsumed; emit the remaining
        // partitions empty so the partition count always matches.
        for size in sizes {
            partitions.push(Vec::with_capacity(size));
        }
        Dataset::from_partitions(Arc::clone(self), partitions)
    }
}

/// Builder for [`ExecutionContext`].
#[derive(Clone, Default)]
pub struct ExecutionContextBuilder {
    workers: Option<usize>,
    default_partitions: Option<usize>,
    max_task_retries: Option<usize>,
    speculation: Option<SpeculationConfig>,
    fault_plan: Option<FaultPlan>,
    schedule_seed: Option<u64>,
    backend: ExecutionBackend,
    worker_spec: Option<WorkerSpec>,
    respawn_budget: Option<usize>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for ExecutionContextBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionContextBuilder")
            .field("workers", &self.workers)
            .field("default_partitions", &self.default_partitions)
            .field("max_task_retries", &self.max_task_retries)
            .field("speculation", &self.speculation)
            .field("fault_plan", &self.fault_plan)
            .field("schedule_seed", &self.schedule_seed)
            .field("backend", &self.backend)
            .field("worker_spec", &self.worker_spec)
            .field("respawn_budget", &self.respawn_budget)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl ExecutionContextBuilder {
    /// Sets the number of worker threads (defaults to available CPUs).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the default partition count (defaults to `2 * workers`).
    pub fn default_partitions(mut self, partitions: usize) -> Self {
        self.default_partitions = Some(partitions.max(1));
        self
    }

    /// Sets the task-retry budget (defaults to
    /// [`DEFAULT_TASK_RETRIES`]; `0` fails the job on the first task
    /// error).
    pub fn max_task_retries(mut self, retries: usize) -> Self {
        self.max_task_retries = Some(retries);
        self
    }

    /// Enables speculative duplication of straggler tasks (off by
    /// default).
    pub fn speculation(mut self, config: SpeculationConfig) -> Self {
        self.speculation = Some(config);
        self
    }

    /// Installs a deterministic fault-injection plan (chaos testing).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Perturbs work-queue pop order in every stage with a seeded rng
    /// (schedule exploration). Off by default — production pops FIFO.
    ///
    /// The engine's results are schedule-independent by construction;
    /// this hook lets tests *prove* it by running the same job under
    /// many seeds and asserting byte-identical output.
    pub fn schedule_chaos(mut self, seed: u64) -> Self {
        self.schedule_seed = Some(seed);
        self
    }

    /// Selects the failure domain for stage execution (defaults to
    /// [`ExecutionBackend::InProcess`]). [`ExecutionBackend::Process`]
    /// also requires [`worker_spec`](Self::worker_spec).
    pub fn backend(mut self, backend: ExecutionBackend) -> Self {
        if let ExecutionBackend::Process { workers } = backend {
            self.backend = ExecutionBackend::Process {
                workers: workers.max(1),
            };
        } else {
            self.backend = backend;
        }
        self
    }

    /// How to launch worker processes for the process backend (typically
    /// the current executable with a hidden `worker` subcommand).
    pub fn worker_spec(mut self, spec: WorkerSpec) -> Self {
        self.worker_spec = Some(spec);
        self
    }

    /// Total worker (re)spawn attempts the process pool may make over
    /// its lifetime (defaults to
    /// [`DEFAULT_RESPAWN_BUDGET`](crate::worker::DEFAULT_RESPAWN_BUDGET)).
    pub fn respawn_budget(mut self, budget: usize) -> Self {
        self.respawn_budget = Some(budget);
        self
    }

    /// Installs a span sink (e.g. a
    /// [`TraceCollector`](dbscout_telemetry::TraceCollector)): every task
    /// attempt emits a span into it, and detectors running on the context
    /// add their phase spans. Off by default.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Finalises the context.
    pub fn build(self) -> Arc<ExecutionContext> {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let default_partitions = self.default_partitions.unwrap_or(workers * 2);
        Arc::new(ExecutionContext {
            workers,
            default_partitions,
            max_task_retries: self.max_task_retries.unwrap_or(DEFAULT_TASK_RETRIES),
            speculation: self.speculation,
            fault_plan: self.fault_plan,
            schedule_seed: self.schedule_seed,
            stage: Mutex::new(None),
            backend: self.backend,
            worker_spec: self.worker_spec,
            respawn_budget: self
                .respawn_budget
                .unwrap_or(crate::worker::DEFAULT_RESPAWN_BUDGET),
            pool: Mutex::new(None),
            metrics: EngineMetrics::new(),
            recorder: self.recorder,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let ctx = ExecutionContext::builder().build();
        assert!(ctx.workers() >= 1);
        assert_eq!(ctx.default_partitions(), ctx.workers() * 2);
        assert_eq!(ctx.max_task_retries(), DEFAULT_TASK_RETRIES);
        assert_eq!(ctx.current_stage(), None);
    }

    #[test]
    fn builder_overrides() {
        let ctx = ExecutionContext::builder()
            .workers(3)
            .default_partitions(17)
            .max_task_retries(0)
            .build();
        assert_eq!(ctx.workers(), 3);
        assert_eq!(ctx.default_partitions(), 17);
        assert_eq!(ctx.max_task_retries(), 0);
    }

    #[test]
    fn builder_clamps_zero() {
        let ctx = ExecutionContext::builder()
            .workers(0)
            .default_partitions(0)
            .build();
        assert_eq!(ctx.workers(), 1);
        assert_eq!(ctx.default_partitions(), 1);
    }

    #[test]
    fn stage_labels_reach_errors() {
        let ctx = ExecutionContext::builder()
            .workers(2)
            .max_task_retries(0)
            .build();
        ctx.set_stage("outlier pass");
        let ds = ctx.parallelize((0..8).collect::<Vec<_>>(), 4);
        let err = ds
            .map(|&x: &i32| {
                assert!(x < 4, "chaos");
                x
            })
            .unwrap_err();
        match err {
            EngineError::TaskFailed { stage, .. } => {
                assert!(stage.contains("outlier pass"), "stage: {stage}");
                assert!(stage.contains("map"), "stage: {stage}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        ctx.clear_stage();
        assert_eq!(ctx.current_stage(), None);
    }

    #[test]
    fn process_stage_on_an_in_process_context_is_an_error() {
        let ctx = ExecutionContext::builder().workers(2).build();
        assert_eq!(ctx.backend(), &ExecutionBackend::InProcess);
        assert!(!ctx.is_process_backend());
        let err = ctx.run_process_stage("join", vec![Vec::new()]).unwrap_err();
        assert!(matches!(err, EngineError::Internal { .. }), "{err:?}");
        assert!(ctx.process_stats().is_none());
    }

    #[test]
    fn process_backend_clamps_workers_and_reports_itself() {
        let ctx = ExecutionContext::builder()
            .backend(ExecutionBackend::Process { workers: 0 })
            .build();
        assert_eq!(ctx.backend(), &ExecutionBackend::Process { workers: 1 });
        assert!(ctx.is_process_backend());
        // No stage has run: the pool is never spawned eagerly.
        assert!(ctx.process_stats().is_none());
        ctx.shutdown_process_pool();
    }

    #[test]
    fn config_reports_shape() {
        let ctx = ExecutionContext::builder()
            .workers(3)
            .default_partitions(9)
            .build();
        let cfg = ctx.config();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.default_partitions, 9);
        assert_eq!(cfg.to_string(), "3 workers / 9 default partitions");
    }

    #[test]
    fn parallelize_balances_partitions() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize((0..10).collect::<Vec<_>>(), 3);
        let sizes = ds.partition_sizes();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(ds.collect().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallelize_more_partitions_than_items() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize(vec![1, 2], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.count(), 2);
    }

    #[test]
    fn parallelize_empty() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize(Vec::<i32>::new(), 4);
        assert_eq!(ds.count(), 0);
        assert_eq!(ds.num_partitions(), 4);
    }

    #[test]
    fn parallelize_zero_partitions_clamped() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let ds = ctx.parallelize(vec![1, 2, 3], 0);
        assert_eq!(ds.num_partitions(), 1);
    }

    #[test]
    fn parallelize_batches_matches_parallelize_for_any_batch_shape() {
        let ctx = ExecutionContext::builder().workers(2).build();
        let items: Vec<i32> = (0..23).collect();
        for parts in [1usize, 3, 5, 23, 40] {
            let reference = ctx.parallelize(items.clone(), parts);
            for batch in [1usize, 4, 7, 23, 100] {
                let batches: Vec<Vec<i32>> = items.chunks(batch).map(|c| c.to_vec()).collect();
                let ds = ctx.parallelize_batches(items.len(), batches, parts);
                assert_eq!(
                    ds.partition_sizes(),
                    reference.partition_sizes(),
                    "parts {parts} batch {batch}"
                );
                assert_eq!(ds.collect().unwrap(), items, "parts {parts} batch {batch}");
            }
        }
    }

    #[test]
    fn parallelize_batches_handles_empty_and_overflow() {
        let ctx = ExecutionContext::builder().workers(2).build();
        // Empty stream: all partitions present, all empty.
        let ds = ctx.parallelize_batches(0, Vec::<Vec<i32>>::new(), 4);
        assert_eq!(ds.num_partitions(), 4);
        assert_eq!(ds.count(), 0);
        // Understated total: surplus lands in the last partition, nothing
        // is dropped.
        let ds = ctx.parallelize_batches(2, vec![vec![1, 2], vec![3, 4]], 2);
        assert_eq!(ds.num_partitions(), 2);
        assert_eq!(ds.collect().unwrap(), vec![1, 2, 3, 4]);
        // Short stream: trailing partitions stay empty.
        let ds = ctx.parallelize_batches(10, vec![vec![1, 2]], 5);
        assert_eq!(ds.num_partitions(), 5);
        assert_eq!(ds.count(), 2);
    }
}
