//! Key-value operations: `REDUCEBYKEY`, `GROUPBYKEY`, `JOIN`, and friends.
//!
//! These are the shuffle-bearing transformations of the engine. Each one
//! follows the classic two-stage plan: a parallel *map side* that scatters
//! records into per-reducer buckets by deterministic key hash (with local
//! combining where the operation allows it), a driver-side transpose, and
//! a parallel *reduce side* over the gathered partitions.

use std::hash::Hash;
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::error::Result;
use crate::shuffle::{drain_by_key_hash, gather, scatter, DetHashMap};

/// One cogrouped record: a key with all its left values and all its right
/// values.
pub type CoGrouped<K, V, W> = (K, (Vec<V>, Vec<W>));

impl<K, V> Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Merges the values of each key with `f` (`REDUCEBYKEY`), producing
    /// `ctx.default_partitions()` output partitions.
    ///
    /// `f` must be associative and commutative: values are combined
    /// map-side first (Spark's combiner), so only one record per distinct
    /// key per input partition crosses the shuffle.
    pub fn reduce_by_key<F>(&self, f: F) -> Result<Dataset<(K, V)>>
    where
        F: Fn(V, V) -> V + Send + Sync,
    {
        self.reduce_by_key_with(self.ctx().default_partitions(), f)
    }

    /// [`reduce_by_key`](Self::reduce_by_key) with an explicit output
    /// partition count.
    pub fn reduce_by_key_with<F>(&self, num_partitions: usize, f: F) -> Result<Dataset<(K, V)>>
    where
        F: Fn(V, V) -> V + Send + Sync,
    {
        let num_partitions = num_partitions.max(1);
        let ctx = Arc::clone(self.ctx());
        let records_in = self.count() as u64;

        // Map side: local combine, then scatter by key hash.
        let tasks: Vec<_> = self
            .partitions()
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                let f = &f;
                move || {
                    let mut combined: DetHashMap<K, V> = DetHashMap::default();
                    for (k, v) in part.iter() {
                        match combined.remove(k) {
                            Some(prev) => {
                                let merged = f(prev, v.clone());
                                combined.insert(k.clone(), merged);
                            }
                            None => {
                                combined.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    scatter(drain_by_key_hash(combined), num_partitions)
                }
            })
            .collect();
        let buckets = ctx.run_stage("reduce_by_key[map]", tasks)?;
        let shuffled: u64 = buckets
            .iter()
            .flat_map(|b| b.iter().map(|v| v.len() as u64))
            .sum();
        ctx.metrics()
            .attach_shuffle(shuffled, shuffled * record_bytes::<(K, V)>());
        let reduce_inputs = gather(buckets, num_partitions);

        // Reduce side: final combine per partition. Tasks borrow their
        // input (cloning records as they fold) so a retried or
        // speculated attempt can re-run from the same partition.
        let tasks: Vec<_> = reduce_inputs
            .into_iter()
            .map(|records| {
                let f = &f;
                move || {
                    let mut combined: DetHashMap<K, V> = DetHashMap::default();
                    for (k, v) in records.iter().cloned() {
                        match combined.remove(&k) {
                            Some(prev) => {
                                let merged = f(prev, v);
                                combined.insert(k, merged);
                            }
                            None => {
                                combined.insert(k, v);
                            }
                        }
                    }
                    drain_by_key_hash(combined)
                }
            })
            .collect();
        let out = ctx.run_stage("reduce_by_key[reduce]", tasks)?;
        let records_out: u64 = out.iter().map(|p| p.len() as u64).sum();
        ctx.metrics().attach_io(records_in, records_out);
        Ok(Dataset::from_partitions(ctx, out))
    }

    /// Gathers all values of each key into one record (`GROUPBYKEY`).
    pub fn group_by_key(&self) -> Result<Dataset<(K, Vec<V>)>> {
        self.group_by_key_with(self.ctx().default_partitions())
    }

    /// [`group_by_key`](Self::group_by_key) with an explicit output
    /// partition count.
    pub fn group_by_key_with(&self, num_partitions: usize) -> Result<Dataset<(K, Vec<V>)>> {
        let num_partitions = num_partitions.max(1);
        let ctx = Arc::clone(self.ctx());
        let records_in = self.count() as u64;

        let tasks: Vec<_> = self
            .partitions()
            .iter()
            .map(|part| {
                let part = Arc::clone(part);
                move || scatter(part.iter().cloned(), num_partitions)
            })
            .collect();
        let buckets = ctx.run_stage("group_by_key[map]", tasks)?;
        ctx.metrics()
            .attach_shuffle(records_in, records_in * record_bytes::<(K, V)>());
        let reduce_inputs = gather(buckets, num_partitions);

        let tasks: Vec<_> = reduce_inputs
            .into_iter()
            .map(|records| {
                move || {
                    let mut groups: DetHashMap<K, Vec<V>> = DetHashMap::default();
                    for (k, v) in records.iter().cloned() {
                        groups.entry(k).or_default().push(v);
                    }
                    drain_by_key_hash(groups)
                }
            })
            .collect();
        let out = ctx.run_stage("group_by_key[reduce]", tasks)?;
        let records_out: u64 = out.iter().map(|p| p.len() as u64).sum();
        ctx.metrics().attach_io(records_in, records_out);
        Ok(Dataset::from_partitions(ctx, out))
    }

    /// Inner hash join on key (`JOIN`): emits `(k, (v, w))` for every pair
    /// of records sharing a key.
    ///
    /// Both sides are shuffled to `max(self, other)` partitions; within a
    /// reduce partition the left side is built into a hash table and the
    /// right side streamed against it.
    pub fn join<W>(&self, other: &Dataset<(K, W)>) -> Result<Dataset<(K, (V, W))>>
    where
        W: Clone + Send + Sync,
    {
        self.join_with(other, self.num_partitions().max(other.num_partitions()))
    }

    /// [`join`](Self::join) with an explicit output partition count.
    pub fn join_with<W>(
        &self,
        other: &Dataset<(K, W)>,
        num_partitions: usize,
    ) -> Result<Dataset<(K, (V, W))>>
    where
        W: Clone + Send + Sync,
    {
        if !Arc::ptr_eq(self.ctx(), other.ctx()) {
            return Err(self.ctx().mismatch_with(other.ctx()));
        }
        let num_partitions = num_partitions.max(1);
        let ctx = Arc::clone(self.ctx());
        let records_in = (self.count() + other.count()) as u64;

        let left = shuffle_side(&ctx, self, "join[shuffle]", num_partitions)?;
        let right = shuffle_side(&ctx, other, "join[shuffle]", num_partitions)?;

        let pairs: Vec<_> = left.into_iter().zip(right).collect();
        let tasks: Vec<_> = pairs
            .into_iter()
            .map(|(lhs, rhs)| {
                move || {
                    let mut table: DetHashMap<K, Vec<V>> = DetHashMap::default();
                    for (k, v) in lhs.iter().cloned() {
                        table.entry(k).or_default().push(v);
                    }
                    let mut out = Vec::new();
                    for (k, w) in rhs.iter() {
                        if let Some(vs) = table.get(k) {
                            for v in vs {
                                out.push((k.clone(), (v.clone(), w.clone())));
                            }
                        }
                    }
                    out
                }
            })
            .collect();
        let out = ctx.run_stage("join[probe]", tasks)?;
        let records_out: u64 = out.iter().map(|p| p.len() as u64).sum();
        ctx.metrics().attach_join_output(records_out);
        ctx.metrics().attach_io(records_in, records_out);
        Ok(Dataset::from_partitions(ctx, out))
    }

    /// Groups both sides by key (`COGROUP`): emits
    /// `(k, (values_left, values_right))` for every key present on either
    /// side.
    pub fn cogroup<W>(
        &self,
        other: &Dataset<(K, W)>,
        num_partitions: usize,
    ) -> Result<Dataset<CoGrouped<K, V, W>>>
    where
        W: Clone + Send + Sync,
    {
        if !Arc::ptr_eq(self.ctx(), other.ctx()) {
            return Err(self.ctx().mismatch_with(other.ctx()));
        }
        let num_partitions = num_partitions.max(1);
        let ctx = Arc::clone(self.ctx());
        let records_in = (self.count() + other.count()) as u64;

        let left = shuffle_side(&ctx, self, "cogroup[shuffle]", num_partitions)?;
        let right = shuffle_side(&ctx, other, "cogroup[shuffle]", num_partitions)?;

        let pairs: Vec<_> = left.into_iter().zip(right).collect();
        let tasks: Vec<_> = pairs
            .into_iter()
            .map(|(lhs, rhs)| {
                move || {
                    let mut table: DetHashMap<K, (Vec<V>, Vec<W>)> = DetHashMap::default();
                    for (k, v) in lhs.iter().cloned() {
                        table.entry(k).or_default().0.push(v);
                    }
                    for (k, w) in rhs.iter().cloned() {
                        table.entry(k).or_default().1.push(w);
                    }
                    drain_by_key_hash(table)
                }
            })
            .collect();
        let out = ctx.run_stage("cogroup[group]", tasks)?;
        let records_out: u64 = out.iter().map(|p| p.len() as u64).sum();
        ctx.metrics().attach_io(records_in, records_out);
        Ok(Dataset::from_partitions(ctx, out))
    }

    /// Applies `f` to each value, keeping keys (`MAPVALUES`).
    pub fn map_values<U, F>(&self, f: F) -> Result<Dataset<(K, U)>>
    where
        U: Send + Sync,
        F: Fn(&V) -> U + Send + Sync,
    {
        self.map(|(k, v)| (k.clone(), f(v)))
    }

    /// The keys of all records (with duplicates).
    pub fn keys(&self) -> Result<Dataset<K>> {
        self.map(|(k, _)| k.clone())
    }

    /// The values of all records.
    pub fn values(&self) -> Result<Dataset<V>> {
        self.map(|(_, v)| v.clone())
    }

    /// Number of records per key, computed via a combining shuffle.
    pub fn count_by_key(&self) -> Result<Dataset<(K, u64)>> {
        self.map(|(k, _)| (k.clone(), 1u64))?
            .reduce_by_key(|a, b| a + b)
    }

    /// Collects the dataset into a driver-side map.
    ///
    /// With duplicate keys the last record (in partition order) wins, as
    /// with `collectAsMap` in Spark.
    pub fn collect_as_map(&self) -> Result<DetHashMap<K, V>> {
        let mut merged = DetHashMap::default();
        for (k, v) in self.collect()? {
            merged.insert(k, v);
        }
        Ok(merged)
    }
}

/// In-memory size of one record, for approximate shuffle-byte metering.
fn record_bytes<T>() -> u64 {
    std::mem::size_of::<T>() as u64
}

/// Map-side scatter + driver transpose for one side of a join.
fn shuffle_side<K, V>(
    ctx: &Arc<crate::ExecutionContext>,
    ds: &Dataset<(K, V)>,
    op: &str,
    num_partitions: usize,
) -> Result<Vec<Vec<(K, V)>>>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    let tasks: Vec<_> = ds
        .partitions()
        .iter()
        .map(|part| {
            let part = Arc::clone(part);
            move || scatter(part.iter().cloned(), num_partitions)
        })
        .collect();
    let buckets = ctx.run_stage(op, tasks)?;
    let moved = ds.count() as u64;
    ctx.metrics()
        .attach_shuffle(moved, moved * record_bytes::<(K, V)>());
    Ok(gather(buckets, num_partitions))
}

#[cfg(test)]
mod tests {
    use crate::ExecutionContext;

    fn ctx() -> std::sync::Arc<ExecutionContext> {
        ExecutionContext::builder()
            .workers(4)
            .default_partitions(6)
            .build()
    }

    #[test]
    fn reduce_by_key_sums() {
        let ctx = ctx();
        let ds = ctx.parallelize((0..100u64).map(|i| (i % 10, i)).collect::<Vec<_>>(), 8);
        let mut out = ds.reduce_by_key(|a, b| a + b).unwrap().collect().unwrap();
        out.sort_unstable();
        // Sum of i in 0..100 with i%10==k is 10k + (0+10+...+90) = 10k+450.
        let expected: Vec<_> = (0..10u64).map(|k| (k, 10 * k + 450)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn reduce_by_key_single_key() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![((), 1u64); 1000], 16);
        let out = ds.reduce_by_key(|a, b| a + b).unwrap().collect().unwrap();
        assert_eq!(out, vec![((), 1000)]);
    }

    #[test]
    fn reduce_by_key_matches_sequential_fold() {
        let ctx = ctx();
        let records: Vec<(u32, i64)> = (0..997).map(|i| (i % 13, i as i64 * 7 - 100)).collect();
        let mut expected = std::collections::HashMap::new();
        for &(k, v) in &records {
            *expected.entry(k).or_insert(0) += v;
        }
        let ds = ctx.parallelize(records, 5);
        let got = ds
            .reduce_by_key(|a, b| a + b)
            .unwrap()
            .collect_as_map()
            .unwrap();
        assert_eq!(got.len(), expected.len());
        for (k, v) in expected {
            assert_eq!(got[&k], v);
        }
    }

    #[test]
    fn map_side_combine_limits_shuffle() {
        let ctx = ctx();
        // 1000 records, 4 partitions, only 2 distinct keys: at most
        // 4 * 2 = 8 records may cross the shuffle.
        let ds = ctx.parallelize((0..1000u64).map(|i| (i % 2, 1u64)).collect(), 4);
        let before = ctx.metrics().snapshot();
        let _ = ds.reduce_by_key(|a, b| a + b).unwrap();
        let d = ctx.metrics().snapshot().since(&before);
        assert!(d.shuffle_records <= 8, "shuffled {}", d.shuffle_records);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![(1, 'a'), (2, 'b'), (1, 'c'), (1, 'd')], 3);
        let groups = ds.group_by_key().unwrap().collect_as_map().unwrap();
        let mut ones = groups[&1].clone();
        ones.sort_unstable();
        assert_eq!(ones, vec!['a', 'c', 'd']);
        assert_eq!(groups[&2], vec!['b']);
    }

    #[test]
    fn join_emits_cross_product_per_key() {
        let ctx = ctx();
        let left = ctx.parallelize(vec![(1, 'a'), (1, 'b'), (2, 'c')], 2);
        let right = ctx.parallelize(vec![(1, 10), (1, 20), (3, 30)], 2);
        let mut out = left.join(&right).unwrap().collect().unwrap();
        out.sort_unstable();
        assert_eq!(
            out,
            vec![
                (1, ('a', 10)),
                (1, ('a', 20)),
                (1, ('b', 10)),
                (1, ('b', 20))
            ]
        );
    }

    #[test]
    fn join_with_no_common_keys_is_empty() {
        let ctx = ctx();
        let left = ctx.parallelize(vec![(1, 'a')], 1);
        let right = ctx.parallelize(vec![(2, 'b')], 1);
        assert_eq!(left.join(&right).unwrap().count(), 0);
    }

    #[test]
    fn join_rejects_foreign_context() {
        let left = ctx().parallelize(vec![(1, 'a')], 1);
        let right = ctx().parallelize(vec![(1, 'b')], 1);
        assert!(left.join(&right).is_err());
    }

    #[test]
    fn cogroup_covers_keys_from_both_sides() {
        let ctx = ctx();
        let left = ctx.parallelize(vec![(1, 'a'), (2, 'b')], 2);
        let right = ctx.parallelize(vec![(2, 20), (3, 30)], 2);
        let out = left.cogroup(&right, 4).unwrap().collect_as_map().unwrap();
        assert_eq!(out[&1], (vec!['a'], vec![]));
        assert_eq!(out[&2], (vec!['b'], vec![20]));
        assert_eq!(out[&3], (vec![], vec![30]));
    }

    #[test]
    fn count_by_key_counts() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![("x", ()), ("y", ()), ("x", ())], 2);
        let counts = ds.count_by_key().unwrap().collect_as_map().unwrap();
        assert_eq!(counts["x"], 2);
        assert_eq!(counts["y"], 1);
    }

    #[test]
    fn map_values_keys_values() {
        let ctx = ctx();
        let ds = ctx.parallelize(vec![(1, 2), (3, 4)], 1);
        assert_eq!(
            ds.map_values(|v| v * 10).unwrap().collect_sorted().unwrap(),
            vec![(1, 20), (3, 40)]
        );
        assert_eq!(ds.keys().unwrap().collect_sorted().unwrap(), vec![1, 3]);
        assert_eq!(ds.values().unwrap().collect_sorted().unwrap(), vec![2, 4]);
    }

    #[test]
    fn result_is_independent_of_partition_count() {
        let ctx = ctx();
        let records: Vec<(u32, u64)> = (0..500).map(|i| (i % 17, i as u64)).collect();
        let mut reference: Option<Vec<(u32, u64)>> = None;
        for parts in [1, 2, 7, 32] {
            let ds = ctx.parallelize(records.clone(), parts);
            let mut got = ds.reduce_by_key(|a, b| a + b).unwrap().collect().unwrap();
            got.sort_unstable();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "partition count {parts} changed result"),
            }
        }
    }
}
