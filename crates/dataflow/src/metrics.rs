//! Engine-level counters.
//!
//! Every transformation records how many tasks it ran and how many records
//! crossed stage boundaries. Shuffle counters in particular let experiments
//! observe the data-movement structure of an algorithm (e.g. the join
//! volume of DBSCOUT's core-point identification phase) independently of
//! wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters owned by an
/// [`ExecutionContext`](crate::ExecutionContext).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    stages: AtomicU64,
    tasks: AtomicU64,
    records_in: AtomicU64,
    records_out: AtomicU64,
    shuffle_records: AtomicU64,
    broadcasts: AtomicU64,
    join_output_records: AtomicU64,
    task_retries: AtomicU64,
    speculative_launches: AtomicU64,
    speculative_wins: AtomicU64,
    injected_faults: AtomicU64,
}

impl EngineMetrics {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed stage that ran `tasks` tasks, consuming
    /// `records_in` records and producing `records_out`.
    pub fn record_stage(&self, tasks: u64, records_in: u64, records_out: u64) {
        self.stages.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
        self.records_in.fetch_add(records_in, Ordering::Relaxed);
        self.records_out.fetch_add(records_out, Ordering::Relaxed);
    }

    /// Records `n` records moved across a shuffle boundary.
    pub fn record_shuffle(&self, n: u64) {
        self.shuffle_records.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one broadcast of a driver-side value to all workers.
    pub fn record_broadcast(&self) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` records emitted by a join.
    pub fn record_join_output(&self, n: u64) {
        self.join_output_records.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one re-queued task attempt after a failure.
    pub fn record_task_retry(&self) {
        self.task_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one speculative duplicate attempt launched on a straggler.
    pub fn record_speculative_launch(&self) {
        self.speculative_launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a speculative attempt finishing before the original.
    pub fn record_speculative_win(&self) {
        self.speculative_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fault injected by a [`crate::FaultPlan`].
    pub fn record_injected_fault(&self) {
        self.injected_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            records_in: self.records_in.load(Ordering::Relaxed),
            records_out: self.records_out.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            join_output_records: self.join_output_records.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            speculative_launches: self.speculative_launches.load(Ordering::Relaxed),
            speculative_wins: self.speculative_wins.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (between experiment repetitions).
    pub fn reset(&self) {
        self.stages.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.records_in.store(0, Ordering::Relaxed);
        self.records_out.store(0, Ordering::Relaxed);
        self.shuffle_records.store(0, Ordering::Relaxed);
        self.broadcasts.store(0, Ordering::Relaxed);
        self.join_output_records.store(0, Ordering::Relaxed);
        self.task_retries.store(0, Ordering::Relaxed);
        self.speculative_launches.store(0, Ordering::Relaxed);
        self.speculative_wins.store(0, Ordering::Relaxed);
        self.injected_faults.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`EngineMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Number of stages (one per transformation) executed.
    pub stages: u64,
    /// Number of per-partition tasks executed.
    pub tasks: u64,
    /// Total records consumed by all stages.
    pub records_in: u64,
    /// Total records produced by all stages.
    pub records_out: u64,
    /// Records that crossed a shuffle (repartitioning) boundary.
    pub shuffle_records: u64,
    /// Number of broadcast variables created.
    pub broadcasts: u64,
    /// Records emitted by join stages.
    pub join_output_records: u64,
    /// Task attempts re-queued after a failure (panic, transient fault).
    pub task_retries: u64,
    /// Speculative duplicate attempts launched on straggler tasks.
    pub speculative_launches: u64,
    /// Speculative attempts that completed before the original.
    pub speculative_wins: u64,
    /// Faults injected by a [`crate::FaultPlan`] (all kinds, delays
    /// included).
    pub injected_faults: u64,
}

impl MetricsSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    ///
    /// Saturates at zero so that a reset between snapshots cannot produce
    /// nonsense deltas.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.saturating_sub(earlier.stages),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            records_in: self.records_in.saturating_sub(earlier.records_in),
            records_out: self.records_out.saturating_sub(earlier.records_out),
            shuffle_records: self.shuffle_records.saturating_sub(earlier.shuffle_records),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
            join_output_records: self
                .join_output_records
                .saturating_sub(earlier.join_output_records),
            task_retries: self.task_retries.saturating_sub(earlier.task_retries),
            speculative_launches: self
                .speculative_launches
                .saturating_sub(earlier.speculative_launches),
            speculative_wins: self
                .speculative_wins
                .saturating_sub(earlier.speculative_wins),
            injected_faults: self.injected_faults.saturating_sub(earlier.injected_faults),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = EngineMetrics::new();
        m.record_stage(4, 100, 50);
        m.record_stage(2, 50, 50);
        m.record_shuffle(30);
        m.record_broadcast();
        m.record_join_output(7);
        let s = m.snapshot();
        assert_eq!(s.stages, 2);
        assert_eq!(s.tasks, 6);
        assert_eq!(s.records_in, 150);
        assert_eq!(s.records_out, 100);
        assert_eq!(s.shuffle_records, 30);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.join_output_records, 7);
    }

    #[test]
    fn fault_tolerance_counters() {
        let m = EngineMetrics::new();
        m.record_task_retry();
        m.record_task_retry();
        m.record_speculative_launch();
        m.record_speculative_win();
        m.record_injected_fault();
        let s = m.snapshot();
        assert_eq!(s.task_retries, 2);
        assert_eq!(s.speculative_launches, 1);
        assert_eq!(s.speculative_wins, 1);
        assert_eq!(s.injected_faults, 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = EngineMetrics::new();
        m.record_stage(4, 100, 50);
        m.record_shuffle(30);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn since_computes_delta() {
        let m = EngineMetrics::new();
        m.record_stage(1, 10, 10);
        let before = m.snapshot();
        m.record_stage(2, 20, 5);
        let after = m.snapshot();
        let d = after.since(&before);
        assert_eq!(d.stages, 1);
        assert_eq!(d.tasks, 2);
        assert_eq!(d.records_in, 20);
        assert_eq!(d.records_out, 5);
    }

    #[test]
    fn since_saturates() {
        let a = MetricsSnapshot {
            stages: 1,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            stages: 5,
            ..Default::default()
        };
        assert_eq!(a.since(&b).stages, 0);
    }

    #[test]
    fn concurrent_updates_are_counted() {
        let m = std::sync::Arc::new(EngineMetrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_shuffle(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().shuffle_records, 8000);
    }
}
