//! Per-stage engine metrics.
//!
//! Every executor stage leaves behind one [`StageRecord`]: its label,
//! task count, record/shuffle volumes, fault-tolerance outcomes, and a
//! task-duration histogram. [`EngineMetrics`] is an ordered log of those
//! records (plus a broadcast counter, which has no owning stage); the
//! familiar [`MetricsSnapshot`] is now an aggregation over the log
//! rather than a bag of global atomics, so experiments keep their
//! whole-run counters while reports and traces can attribute volume and
//! wall-clock to individual stages.
//!
//! The driver executes stages sequentially, so "the most recently pushed
//! record" is well-defined when an operation attaches its record/shuffle
//! volumes after its stage completes — that is what the `attach_*`
//! methods rely on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dbscout_telemetry::{DurationHistogram, KernelCounters, Recorder, Span, SpanKind};

/// One executed stage's full accounting.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage label (`"{phase}:{op}"` while a phase label is set).
    pub label: String,
    /// When the stage started executing.
    pub started: Instant,
    /// Stage wall-clock (driver-observed).
    pub duration: Duration,
    /// Completed tasks (one per partition; superseded speculative
    /// attempts are not counted).
    pub tasks: u64,
    /// Records consumed by the stage's operation.
    pub records_in: u64,
    /// Records produced by the stage's operation.
    pub records_out: u64,
    /// Records moved across this stage's shuffle boundary.
    pub shuffle_records: u64,
    /// Approximate bytes moved across the shuffle boundary (record count
    /// times in-memory record size).
    pub shuffle_bytes: u64,
    /// Records emitted by a join probe in this stage.
    pub join_output_records: u64,
    /// Failed attempts that were re-queued.
    pub task_retries: u64,
    /// Speculative duplicate attempts launched.
    pub speculative_launches: u64,
    /// Speculative duplicates that finished before the original.
    pub speculative_wins: u64,
    /// Faults injected by a [`crate::FaultPlan`].
    pub injected_faults: u64,
    /// Worker processes lost during the stage (process backend: SIGKILL,
    /// crash, or heartbeat-deadline miss).
    pub worker_kills: u64,
    /// Worker processes respawned during the stage (process backend).
    pub worker_respawns: u64,
    /// Tasks re-dispatched to a surviving worker after their host died
    /// (process backend).
    pub task_reassignments: u64,
    /// Kernel work counters summed over the stage's tasks. Totals are
    /// sums over a disjoint partition of the cell range, so they are
    /// invariant across thread counts, schedules, and backends —
    /// deterministic, unlike every timing field here.
    pub kernel: KernelCounters,
    /// Durations of the winning attempt of each completed task.
    pub task_durations: DurationHistogram,
}

impl StageRecord {
    /// A zeroed record for a stage starting now.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            started: Instant::now(),
            duration: Duration::ZERO,
            tasks: 0,
            records_in: 0,
            records_out: 0,
            shuffle_records: 0,
            shuffle_bytes: 0,
            join_output_records: 0,
            task_retries: 0,
            speculative_launches: 0,
            speculative_wins: 0,
            injected_faults: 0,
            worker_kills: 0,
            worker_respawns: 0,
            task_reassignments: 0,
            kernel: KernelCounters::new(),
            task_durations: DurationHistogram::new(),
        }
    }
}

/// The engine's metrics log, owned by an
/// [`ExecutionContext`](crate::ExecutionContext): one [`StageRecord`]
/// per executed stage, in execution order, plus the broadcast counter.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    records: Mutex<Vec<StageRecord>>,
    broadcasts: AtomicU64,
}

impl EngineMetrics {
    /// Creates an empty metrics log.
    pub fn new() -> Self {
        Self::default()
    }

    fn records_locked(&self) -> std::sync::MutexGuard<'_, Vec<StageRecord>> {
        crate::executor::lock_unpoisoned(&self.records)
    }

    /// Appends one completed stage's record (called by the executor once
    /// per stage, success or failure).
    pub(crate) fn push_stage(&self, record: StageRecord) {
        self.records_locked().push(record);
    }

    /// Runs `f` on the most recently pushed record. Operations call this
    /// right after their stage completes; if nothing was recorded (a
    /// driver-only operation), a synthetic record is pushed first.
    fn with_last(&self, label: &str, f: impl FnOnce(&mut StageRecord)) {
        let mut records = self.records_locked();
        if records.is_empty() {
            records.push(StageRecord::new(label));
        }
        if let Some(last) = records.last_mut() {
            f(last);
        }
    }

    /// Attaches an operation's record volumes to its final stage.
    pub(crate) fn attach_io(&self, records_in: u64, records_out: u64) {
        self.with_last("driver", |r| {
            r.records_in = r.records_in.saturating_add(records_in);
            r.records_out = r.records_out.saturating_add(records_out);
        });
    }

    /// Attaches shuffle volume (records and approximate bytes) to the
    /// map-side stage that produced it.
    pub(crate) fn attach_shuffle(&self, records: u64, bytes: u64) {
        self.with_last("driver", |r| {
            r.shuffle_records = r.shuffle_records.saturating_add(records);
            r.shuffle_bytes = r.shuffle_bytes.saturating_add(bytes);
        });
    }

    /// Attaches join-probe output volume to the probe stage.
    pub(crate) fn attach_join_output(&self, records: u64) {
        self.with_last("driver", |r| {
            r.join_output_records = r.join_output_records.saturating_add(records);
        });
    }

    /// Attaches kernel work counters to the most recently pushed stage
    /// record. Detectors call this right after a kernel-bearing stage
    /// completes, having summed the counters over the stage's tasks in
    /// task-index order.
    pub fn attach_kernel_counters(&self, counters: KernelCounters) {
        self.with_last("driver", |r| {
            r.kernel.merge(&counters);
        });
    }

    /// Records a driver-only stage (no worker tasks), e.g. `repartition`,
    /// which moves every record without running on the pool.
    pub(crate) fn push_driver_stage(&self, record: StageRecord) {
        self.push_stage(record);
    }

    /// Records one broadcast of a driver-side value to all workers.
    pub(crate) fn record_broadcast(&self) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
    }

    /// A copy of every stage record, in execution order. This is the raw
    /// material for run reports and stage spans.
    pub fn stage_records(&self) -> Vec<StageRecord> {
        self.records_locked().clone()
    }

    /// Emits one [`SpanKind::Stage`] span per recorded stage into
    /// `recorder`, carrying the stage's volumes and outcomes as span
    /// arguments. Called once at the end of a traced run, after
    /// operations have attached their volumes.
    pub fn emit_stage_spans(&self, recorder: &dyn Recorder) {
        // Running totals feed the trace's counter track: one cumulative
        // sample per kernel counter at each stage's end instant.
        let mut running = KernelCounters::new();
        for r in self.records_locked().iter() {
            recorder.record_span(
                Span::new(r.label.clone(), SpanKind::Stage, r.started, r.duration)
                    .arg("tasks", r.tasks)
                    .arg("records_in", r.records_in)
                    .arg("records_out", r.records_out)
                    .arg("shuffle_records", r.shuffle_records)
                    .arg("shuffle_bytes", r.shuffle_bytes)
                    .arg("join_output_records", r.join_output_records)
                    .arg("task_retries", r.task_retries)
                    .arg("speculative_launches", r.speculative_launches)
                    .arg("speculative_wins", r.speculative_wins)
                    .arg("injected_faults", r.injected_faults)
                    .arg("worker_kills", r.worker_kills)
                    .arg("worker_respawns", r.worker_respawns)
                    .arg("task_reassignments", r.task_reassignments)
                    .arg("cells_visited", r.kernel.cells_visited)
                    .arg("bbox_prunes", r.kernel.bbox_prunes)
                    .arg("early_exit_hits", r.kernel.early_exit_hits)
                    .arg("distance_evals", r.kernel.distance_evals),
            );
            if r.kernel != KernelCounters::new() {
                running.merge(&r.kernel);
                let at = r.started + r.duration;
                for (name, value) in running.named() {
                    recorder.record_counter_point(name, at, value);
                }
            }
        }
    }

    /// Takes a consistent point-in-time aggregation over all stage
    /// records (plus the broadcast counter).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let records = self.records_locked();
        let mut s = MetricsSnapshot {
            stages: records.len() as u64,
            broadcasts: self.broadcasts.load(Ordering::Acquire),
            ..MetricsSnapshot::default()
        };
        for r in records.iter() {
            s.tasks = s.tasks.saturating_add(r.tasks);
            s.records_in = s.records_in.saturating_add(r.records_in);
            s.records_out = s.records_out.saturating_add(r.records_out);
            s.shuffle_records = s.shuffle_records.saturating_add(r.shuffle_records);
            s.shuffle_bytes = s.shuffle_bytes.saturating_add(r.shuffle_bytes);
            s.join_output_records = s.join_output_records.saturating_add(r.join_output_records);
            s.task_retries = s.task_retries.saturating_add(r.task_retries);
            s.speculative_launches = s
                .speculative_launches
                .saturating_add(r.speculative_launches);
            s.speculative_wins = s.speculative_wins.saturating_add(r.speculative_wins);
            s.injected_faults = s.injected_faults.saturating_add(r.injected_faults);
            s.worker_kills = s.worker_kills.saturating_add(r.worker_kills);
            s.worker_respawns = s.worker_respawns.saturating_add(r.worker_respawns);
            s.task_reassignments = s.task_reassignments.saturating_add(r.task_reassignments);
        }
        s
    }

    /// Clears the log and counters (between experiment repetitions).
    pub fn reset(&self) {
        self.records_locked().clear();
        self.broadcasts.store(0, Ordering::Release);
    }
}

/// A point-in-time aggregation over [`EngineMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Number of executor stages run (shuffle-bearing operations count
    /// one stage per internal step).
    pub stages: u64,
    /// Number of per-partition tasks completed.
    pub tasks: u64,
    /// Total records consumed by all operations.
    pub records_in: u64,
    /// Total records produced by all operations.
    pub records_out: u64,
    /// Records that crossed a shuffle (repartitioning) boundary.
    pub shuffle_records: u64,
    /// Approximate bytes that crossed a shuffle boundary.
    pub shuffle_bytes: u64,
    /// Number of broadcast variables created.
    pub broadcasts: u64,
    /// Records emitted by join stages.
    pub join_output_records: u64,
    /// Task attempts re-queued after a failure (panic, transient fault).
    pub task_retries: u64,
    /// Speculative duplicate attempts launched on straggler tasks.
    pub speculative_launches: u64,
    /// Speculative attempts that completed before the original.
    pub speculative_wins: u64,
    /// Faults injected by a [`crate::FaultPlan`] (all kinds, delays
    /// included).
    pub injected_faults: u64,
    /// Worker processes lost (process backend).
    pub worker_kills: u64,
    /// Worker processes respawned (process backend).
    pub worker_respawns: u64,
    /// Tasks re-dispatched after their host worker died (process
    /// backend).
    pub task_reassignments: u64,
}

impl MetricsSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    ///
    /// Saturates at zero so that a reset between snapshots cannot produce
    /// nonsense deltas.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.saturating_sub(earlier.stages),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            records_in: self.records_in.saturating_sub(earlier.records_in),
            records_out: self.records_out.saturating_sub(earlier.records_out),
            shuffle_records: self.shuffle_records.saturating_sub(earlier.shuffle_records),
            shuffle_bytes: self.shuffle_bytes.saturating_sub(earlier.shuffle_bytes),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
            join_output_records: self
                .join_output_records
                .saturating_sub(earlier.join_output_records),
            task_retries: self.task_retries.saturating_sub(earlier.task_retries),
            speculative_launches: self
                .speculative_launches
                .saturating_sub(earlier.speculative_launches),
            speculative_wins: self
                .speculative_wins
                .saturating_sub(earlier.speculative_wins),
            injected_faults: self.injected_faults.saturating_sub(earlier.injected_faults),
            worker_kills: self.worker_kills.saturating_sub(earlier.worker_kills),
            worker_respawns: self.worker_respawns.saturating_sub(earlier.worker_respawns),
            task_reassignments: self
                .task_reassignments
                .saturating_sub(earlier.task_reassignments),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscout_telemetry::TraceCollector;

    fn record(label: &str) -> StageRecord {
        let mut r = StageRecord::new(label);
        r.tasks = 4;
        r.records_in = 100;
        r.records_out = 50;
        r
    }

    #[test]
    fn snapshot_aggregates_stage_records() {
        let m = EngineMetrics::new();
        m.push_stage(record("a"));
        let mut second = record("b");
        second.tasks = 2;
        second.records_in = 50;
        second.records_out = 50;
        second.task_retries = 1;
        m.push_stage(second);
        m.attach_shuffle(30, 240);
        m.attach_join_output(7);
        m.record_broadcast();
        let s = m.snapshot();
        assert_eq!(s.stages, 2);
        assert_eq!(s.tasks, 6);
        assert_eq!(s.records_in, 150);
        assert_eq!(s.records_out, 100);
        assert_eq!(s.shuffle_records, 30);
        assert_eq!(s.shuffle_bytes, 240);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.join_output_records, 7);
        assert_eq!(s.task_retries, 1);
    }

    #[test]
    fn attach_targets_the_most_recent_record() {
        let m = EngineMetrics::new();
        m.push_stage(record("map-side"));
        m.attach_shuffle(10, 80);
        m.push_stage(record("reduce-side"));
        m.attach_io(5, 3);
        let records = m.stage_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].shuffle_records, 10);
        assert_eq!(records[0].shuffle_bytes, 80);
        assert_eq!(records[1].shuffle_records, 0);
        // attach_io adds on top of the record's own counts.
        assert_eq!(records[1].records_in, 105);
        assert_eq!(records[1].records_out, 53);
    }

    #[test]
    fn attach_without_stage_creates_a_driver_record() {
        let m = EngineMetrics::new();
        m.attach_shuffle(9, 72);
        let records = m.stage_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "driver");
        assert_eq!(records[0].shuffle_records, 9);
    }

    #[test]
    fn reset_clears_log_and_counters() {
        let m = EngineMetrics::new();
        m.push_stage(record("a"));
        m.record_broadcast();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.stage_records().is_empty());
    }

    #[test]
    fn since_computes_delta() {
        let m = EngineMetrics::new();
        m.push_stage(record("a"));
        let before = m.snapshot();
        let mut r = record("b");
        r.tasks = 2;
        r.records_in = 20;
        r.records_out = 5;
        m.push_stage(r);
        let d = m.snapshot().since(&before);
        assert_eq!(d.stages, 1);
        assert_eq!(d.tasks, 2);
        assert_eq!(d.records_in, 20);
        assert_eq!(d.records_out, 5);
    }

    #[test]
    fn since_saturates() {
        let a = MetricsSnapshot {
            stages: 1,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            stages: 5,
            ..Default::default()
        };
        assert_eq!(a.since(&b).stages, 0);
    }

    #[test]
    fn emit_stage_spans_renders_one_span_per_stage() {
        let m = EngineMetrics::new();
        let mut r = record("core-point pass:map_partitions");
        r.shuffle_records = 12;
        m.push_stage(r);
        m.push_stage(record("outlier pass:aggregate"));
        let collector = TraceCollector::new();
        m.emit_stage_spans(&collector);
        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "core-point pass:map_partitions");
        assert_eq!(spans[0].kind.category(), "stage");
        assert!(spans[0]
            .args
            .iter()
            .any(|(k, v)| *k == "shuffle_records" && *v == dbscout_telemetry::ArgValue::U64(12)));
        // Zeroed kernel counters emit no counter samples.
        assert!(collector.counter_points().is_empty());
    }

    #[test]
    fn attached_kernel_counters_reach_spans_and_counter_points() {
        let m = EngineMetrics::new();
        m.push_stage(record("core-point pass:shard"));
        m.attach_kernel_counters(KernelCounters {
            cells_visited: 10,
            bbox_prunes: 2,
            early_exit_hits: 1,
            distance_evals: 500,
        });
        m.push_stage(record("outlier pass:shard"));
        m.attach_kernel_counters(KernelCounters {
            cells_visited: 5,
            bbox_prunes: 0,
            early_exit_hits: 0,
            distance_evals: 300,
        });
        let records = m.stage_records();
        assert_eq!(records[0].kernel.distance_evals, 500);
        assert_eq!(records[1].kernel.cells_visited, 5);
        let collector = TraceCollector::new();
        m.emit_stage_spans(&collector);
        let spans = collector.spans();
        assert!(spans[0]
            .args
            .iter()
            .any(|(k, v)| *k == "distance_evals" && *v == dbscout_telemetry::ArgValue::U64(500)));
        // Counter points are cumulative: the second sample of each name
        // carries the running total, and the totals map holds the max.
        let points = collector.counter_points();
        assert_eq!(points.len(), 8);
        assert!(points.contains(&("distance_evals".to_owned(), 500)));
        assert!(points.contains(&("distance_evals".to_owned(), 800)));
        assert!(collector
            .counters()
            .contains(&("distance_evals".to_owned(), 800)));
    }

    #[test]
    fn concurrent_stage_pushes_are_all_kept() {
        let m = std::sync::Arc::new(EngineMetrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.push_stage(StageRecord::new("x"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().stages, 800);
    }
}
