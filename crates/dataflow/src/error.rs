//! Error type for engine operations.

use std::fmt;

/// Convenient result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors surfaced by dataflow operations.
///
/// User closures run inside worker tasks; a panicking closure is caught and
/// reported as [`EngineError::TaskPanic`] instead of tearing down the
/// process, mirroring how a cluster engine reports a failed task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A task (user closure over one partition) panicked.
    TaskPanic {
        /// Index of the partition whose task panicked.
        partition: usize,
        /// Panic payload rendered to a string, when available.
        message: String,
    },
    /// An operation was asked to produce an invalid number of partitions.
    InvalidPartitionCount {
        /// The requested number of partitions.
        requested: usize,
    },
    /// Two datasets that must share an [`super::ExecutionContext`] did not.
    ContextMismatch,
    /// An engine-internal invariant failed to hold. Surfaced as an error
    /// instead of a panic so a broken scheduler cannot take down a scan.
    Internal {
        /// Description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TaskPanic { partition, message } => {
                write!(f, "task for partition {partition} panicked: {message}")
            }
            EngineError::InvalidPartitionCount { requested } => {
                write!(f, "invalid partition count: {requested} (must be >= 1)")
            }
            EngineError::ContextMismatch => {
                write!(f, "datasets belong to different execution contexts")
            }
            EngineError::Internal { message } => {
                write!(f, "engine invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

// Compile-time proof of the XL004 contract: the error type is
// `Display + std::error::Error + Send + Sync`.
const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<EngineError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_task_panic() {
        let err = EngineError::TaskPanic {
            partition: 3,
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "task for partition 3 panicked: boom");
    }

    #[test]
    fn display_invalid_partition_count() {
        let err = EngineError::InvalidPartitionCount { requested: 0 };
        assert!(err.to_string().contains("invalid partition count: 0"));
    }

    #[test]
    fn display_context_mismatch() {
        assert!(EngineError::ContextMismatch
            .to_string()
            .contains("contexts"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(EngineError::ContextMismatch);
    }
}
