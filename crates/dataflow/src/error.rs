//! Error type for engine operations.

use std::fmt;

use crate::context::ContextConfig;

/// Convenient result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors surfaced by dataflow operations.
///
/// User closures run inside worker tasks; a panicking closure is caught,
/// retried up to the context's task-retry budget, and only an exhausted
/// budget surfaces as [`EngineError::TaskFailed`] — mirroring how a
/// cluster engine re-executes failed tasks before failing the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A task (user closure over one partition) exhausted its attempt
    /// budget (the original run plus `max_task_retries` retries).
    TaskFailed {
        /// Name of the stage the task belonged to (e.g.
        /// `"core-point pass:join"`).
        stage: String,
        /// Index of the partition whose task failed.
        partition: usize,
        /// Number of attempts made, all of which failed.
        attempts: usize,
        /// One cause per failed attempt, in attempt order.
        causes: Vec<String>,
    },
    /// An operation was asked to produce an invalid number of partitions.
    InvalidPartitionCount {
        /// The requested number of partitions.
        requested: usize,
    },
    /// Two datasets that must share an [`super::ExecutionContext`] did not.
    ContextMismatch {
        /// Configuration of the left-hand dataset's context.
        left: ContextConfig,
        /// Configuration of the right-hand dataset's context.
        right: ContextConfig,
    },
    /// The process backend lost worker processes faster than its respawn
    /// budget could replace them: every slot is dead and no respawn is
    /// allowed, so the stage cannot make progress. This is the
    /// whole-worker failure domain ("a machine died"), distinct from
    /// [`EngineError::TaskFailed`] ("a closure failed").
    WorkerLost {
        /// Name of the stage that was running when the pool died.
        stage: String,
        /// Slot index of the last worker whose loss exhausted the pool.
        worker: usize,
        /// Respawns performed before the budget ran out.
        respawns: usize,
        /// What killed the pool (deadline misses, SIGKILLs, spawn errors).
        message: String,
    },
    /// An engine-internal invariant failed to hold. Surfaced as an error
    /// instead of a panic so a broken scheduler cannot take down a scan.
    Internal {
        /// Description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TaskFailed {
                stage,
                partition,
                attempts,
                causes,
            } => {
                write!(
                    f,
                    "task for partition {partition} of stage {stage:?} failed after \
                     {attempts} attempt(s): {}",
                    causes.join("; ")
                )
            }
            EngineError::InvalidPartitionCount { requested } => {
                write!(f, "invalid partition count: {requested} (must be >= 1)")
            }
            EngineError::ContextMismatch { left, right } => {
                write!(
                    f,
                    "datasets belong to different execution contexts \
                     (left: {left}, right: {right})"
                )
            }
            EngineError::WorkerLost {
                stage,
                worker,
                respawns,
                message,
            } => {
                write!(
                    f,
                    "worker {worker} lost during stage {stage:?} with the respawn budget \
                     exhausted ({respawns} respawn(s) used): {message}"
                )
            }
            EngineError::Internal { message } => {
                write!(f, "engine invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

// Compile-time proof of the XL004 contract: the error type is
// `Display + std::error::Error + Send + Sync`.
const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<EngineError>();

#[cfg(test)]
mod tests {
    use super::*;

    fn mismatch() -> EngineError {
        EngineError::ContextMismatch {
            left: ContextConfig {
                workers: 4,
                default_partitions: 8,
            },
            right: ContextConfig {
                workers: 2,
                default_partitions: 16,
            },
        }
    }

    #[test]
    fn display_task_failed() {
        let err = EngineError::TaskFailed {
            stage: "core-point pass:join".into(),
            partition: 3,
            attempts: 2,
            causes: vec!["attempt 1: boom".into(), "attempt 2: boom again".into()],
        };
        let s = err.to_string();
        assert!(s.contains("partition 3"), "{s}");
        assert!(s.contains("core-point pass:join"), "{s}");
        assert!(s.contains("2 attempt(s)"), "{s}");
        assert!(s.contains("attempt 1: boom; attempt 2: boom again"), "{s}");
    }

    #[test]
    fn display_worker_lost() {
        let err = EngineError::WorkerLost {
            stage: "core-point pass".into(),
            worker: 2,
            respawns: 8,
            message: "heartbeat deadline missed".into(),
        };
        let s = err.to_string();
        assert!(s.contains("worker 2"), "{s}");
        assert!(s.contains("core-point pass"), "{s}");
        assert!(s.contains("8 respawn(s)"), "{s}");
        assert!(s.contains("heartbeat deadline missed"), "{s}");
    }

    #[test]
    fn display_invalid_partition_count() {
        let err = EngineError::InvalidPartitionCount { requested: 0 };
        assert!(err.to_string().contains("invalid partition count: 0"));
    }

    #[test]
    fn display_context_mismatch_names_both_configs() {
        let s = mismatch().to_string();
        assert!(s.contains("different execution contexts"), "{s}");
        assert!(s.contains("4 workers"), "{s}");
        assert!(s.contains("16 default partitions"), "{s}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(mismatch());
    }
}
