//! Shared-nothing process workers with whole-worker failure recovery.
//!
//! The in-process executor shares one address space, so a task that
//! corrupts memory or aborts the process takes the whole job with it.
//! This module provides the alternative failure domain: a
//! [`ProcessPool`] of child processes, each owning a disjoint slice of
//! work, connected to the driver only by a pipe pair speaking the
//! [`crate::ipc`] frame protocol. A worker that dies — SIGKILL, abort,
//! OOM kill, or a wedged loop that misses its heartbeat deadline — is
//! respawned with exponential backoff under a bounded budget, and its
//! in-flight task is re-dispatched to a survivor. The pool degrades
//! gracefully down to a single live worker; only a dead pool with an
//! exhausted budget surfaces as [`EngineError::WorkerLost`].
//!
//! Failure-handling invariants:
//!
//! * **Heartbeats.** Every worker emits a heartbeat every
//!   [`HEARTBEAT_INTERVAL`] from a dedicated thread. A worker silent for
//!   [`HEARTBEAT_DEADLINE`] is declared dead and killed — a wedged
//!   worker and a SIGKILLed worker converge on the same recovery path.
//! * **Incarnations.** Each (re)spawn bumps the slot's incarnation
//!   number; pipe events from a previous incarnation are discarded, so
//!   a stale result from a worker presumed dead can never corrupt the
//!   current stage.
//! * **Reassignment.** A dead worker's in-flight task returns to the
//!   front of the pending queue and is picked up by any idle live
//!   worker (respawn backoff means survivors usually win the race).
//! * **Poison quarantine.** A task whose dispatch coincides with the
//!   death of **two distinct worker slots** is treated as poison input:
//!   it is never dispatched again and the stage fails with a precise
//!   [`EngineError::TaskFailed`] naming the task, instead of grinding
//!   the respawn budget to zero on an input that kills every host.
//! * **Bounded respawns.** The pool performs at most its respawn budget
//!   of (re)spawn attempts across its lifetime; failed spawn attempts
//!   burn budget too, so a deleted worker binary cannot loop forever.
//!
//! Results are deterministic by construction: task payloads are
//! dispatched by index, results are keyed by index, and workers compute
//! pure functions of their payload — so worker loss, respawn order, and
//! scheduling races change only *where* a task runs, never what the
//! stage returns.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dbscout_telemetry::{Recorder, Span, SpanKind};

use crate::error::{EngineError, Result};
use crate::executor::lock_unpoisoned;
use crate::fault::FaultPlan;
use crate::ipc::{read_frame, write_frame, Frame, IpcError, WireSpan};

/// Environment variable through which the parent assigns a worker its
/// slot index.
pub const ENV_WORKER_SLOT: &str = "DBSCOUT_WORKER_SLOT";

/// How often a worker's heartbeat thread emits a liveness frame.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// How long a worker may stay silent (no frame of any kind) before the
/// parent declares it dead. Twenty heartbeat intervals of slack keeps
/// false positives out of CI machines under load.
pub const HEARTBEAT_DEADLINE: Duration = Duration::from_secs(2);

/// Default total respawn budget for a pool's lifetime.
pub const DEFAULT_RESPAWN_BUDGET: usize = 8;

/// First respawn backoff; doubles per consecutive death of a slot.
const RESPAWN_BACKOFF_BASE: Duration = Duration::from_millis(25);

/// Cap on the exponential respawn backoff.
const RESPAWN_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Event-loop tick: how long the driver blocks on the event channel
/// before re-checking deadlines and respawn timers.
const EVENT_TICK: Duration = Duration::from_millis(25);

/// How long `shutdown` waits for a worker to exit after the shutdown
/// frame before escalating to SIGKILL.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

/// How to launch one worker process: the program plus fixed arguments
/// and environment. The pool appends [`ENV_WORKER_SLOT`] per slot.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerSpec {
    /// A spec launching `program` with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Appends one command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Sets one environment variable for every spawned worker.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// The program this spec launches.
    pub fn program(&self) -> &PathBuf {
        &self.program
    }

    fn command(&self, slot: usize) -> Command {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args);
        for (k, v) in &self.envs {
            cmd.env(k, v);
        }
        cmd.env(ENV_WORKER_SLOT, slot.to_string());
        cmd.stdin(Stdio::piped());
        cmd.stdout(Stdio::piped());
        // Worker stderr passes through to the parent's stderr so a
        // crashing worker's diagnostics are not swallowed.
        cmd.stderr(Stdio::inherit());
        cmd
    }
}

/// Pool configuration beyond the worker launch spec.
#[derive(Debug, Clone)]
pub struct ProcessPoolConfig {
    /// Number of worker slots.
    pub workers: usize,
    /// Total (re)spawn attempts allowed after the initial spawn.
    pub respawn_budget: usize,
    /// How many times a task may fail with a handler error
    /// ([`Frame::TaskErr`]) before the stage fails. Worker deaths do not
    /// count against this budget — they count against the respawn budget
    /// and the poison rule instead.
    pub max_task_retries: usize,
    /// Deterministic worker-kill injection (chaos testing).
    pub fault_plan: Option<FaultPlan>,
}

impl ProcessPoolConfig {
    /// A config with `workers` slots and all defaults.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            respawn_budget: DEFAULT_RESPAWN_BUDGET,
            max_task_retries: crate::context::DEFAULT_TASK_RETRIES,
            fault_plan: None,
        }
    }
}

/// Lifetime accounting for one worker slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The slot index.
    pub slot: usize,
    /// Processes spawned into this slot (initial spawn included).
    pub spawns: u64,
    /// Deaths observed (SIGKILL, crash, deadline miss, pipe error).
    pub kills: u64,
    /// Successful respawns after a death.
    pub respawns: u64,
    /// Tasks this slot completed successfully.
    pub tasks_completed: u64,
    /// Max `VmHWM` reported by any incarnation of this slot, in bytes.
    pub peak_rss_bytes: u64,
    /// OS pid of the slot's current (most recent) incarnation, from its
    /// hello frame; 0 until the first hello arrives.
    pub pid: u64,
    /// Max CPU time (utime + stime) reported by any incarnation of this
    /// slot, in microseconds.
    pub cpu_time_us: u64,
}

/// Pool-lifetime accounting, aggregated across slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessPoolStats {
    /// Number of worker slots.
    pub workers: usize,
    /// Total processes spawned (initial spawns plus respawns).
    pub workers_spawned: u64,
    /// Total worker deaths observed.
    pub worker_kills: u64,
    /// Total successful respawns.
    pub worker_respawns: u64,
    /// Tasks re-dispatched because their host died.
    pub task_reassignments: u64,
    /// Tasks quarantined by the poison rule.
    pub poisoned_tasks: u64,
    /// Sum over slots of the max `VmHWM` any incarnation reported — the
    /// child-side counterpart of the parent's `peak_rss_bytes`.
    pub child_peak_rss_bytes: u64,
    /// Sum over slots of the max CPU time any incarnation reported, in
    /// microseconds.
    pub child_cpu_time_us: u64,
    /// Per-slot breakdown, in slot order.
    pub per_worker: Vec<WorkerStats>,
}

/// What one stage cost beyond its results.
#[derive(Debug, Clone, Default)]
pub struct StageOutcome {
    /// Task results in task-index order.
    pub results: Vec<Vec<u8>>,
    /// Worker deaths during the stage (stage-end kills included).
    pub worker_kills: u64,
    /// Successful respawns during the stage.
    pub worker_respawns: u64,
    /// Tasks re-dispatched because their host died.
    pub task_reassignments: u64,
    /// Handler-error retries ([`Frame::TaskErr`] re-queues).
    pub task_retries: u64,
}

/// An event delivered by a slot's pipe-reader thread.
enum Event {
    /// A decoded frame from the worker.
    Frame {
        slot: usize,
        incarnation: u64,
        frame: Frame,
    },
    /// The worker's stdout closed: clean EOF (`error: None`) or a
    /// protocol/pipe error.
    Closed {
        slot: usize,
        incarnation: u64,
        error: Option<String>,
    },
}

/// One worker slot: the live child (if any) plus recovery state.
struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Bumped on every (re)spawn and every declared death; events whose
    /// incarnation does not match are stale and ignored.
    incarnation: u64,
    /// Last time any frame arrived from the current incarnation.
    last_seen: Instant,
    /// Task index currently dispatched to this slot, if any.
    in_flight: Option<usize>,
    /// When the in-flight task was written to the worker; the base the
    /// worker's span offsets are rebased onto (worker `Instant`s cannot
    /// cross the process boundary).
    dispatched_at: Instant,
    /// When a scheduled respawn may fire; `None` while live or when the
    /// budget is exhausted.
    respawn_at: Option<Instant>,
    /// Deaths since the last successfully completed task (drives the
    /// exponential backoff).
    consecutive_deaths: u32,
    stats: WorkerStats,
}

impl Slot {
    fn new(slot: usize) -> Self {
        Self {
            child: None,
            stdin: None,
            incarnation: 0,
            last_seen: Instant::now(),
            in_flight: None,
            dispatched_at: Instant::now(),
            respawn_at: None,
            consecutive_deaths: 0,
            stats: WorkerStats {
                slot,
                ..WorkerStats::default()
            },
        }
    }

    fn is_live(&self) -> bool {
        self.child.is_some()
    }
}

/// Per-stage bookkeeping, reset for every [`ProcessPool::run_stage`].
struct StageState<'a> {
    label: String,
    epoch: u64,
    tasks: Vec<Vec<u8>>,
    results: Vec<Option<Vec<u8>>>,
    pending: VecDeque<usize>,
    completed: usize,
    /// Handler-error ([`Frame::TaskErr`]) failures per task.
    attempts: Vec<usize>,
    causes: Vec<Vec<String>>,
    /// Distinct slots that died while hosting each task (poison rule).
    death_slots: Vec<Vec<usize>>,
    /// Remaining injected dispatch-kills per task.
    dispatch_kills: Vec<usize>,
    retries: u64,
    reassignments: u64,
    last_death: Option<(usize, String)>,
    /// Sink for parent-observed task spans, worker spans merged from
    /// [`Frame::Telemetry`], and worker-kill counters. `None` keeps the
    /// stage loop allocation- and lock-free.
    recorder: Option<&'a dyn Recorder>,
}

impl<'a> StageState<'a> {
    fn new(
        label: &str,
        epoch: u64,
        tasks: Vec<Vec<u8>>,
        plan: Option<&FaultPlan>,
        recorder: Option<&'a dyn Recorder>,
    ) -> Self {
        let n = tasks.len();
        let mut dispatch_kills = vec![0usize; n];
        if let Some(plan) = plan {
            for (task, times) in plan.worker_kills_on_dispatch(label, n) {
                if let Some(slot) = dispatch_kills.get_mut(task) {
                    *slot = times;
                }
            }
        }
        Self {
            label: label.to_owned(),
            epoch,
            tasks,
            results: (0..n).map(|_| None).collect(),
            pending: (0..n).collect(),
            completed: 0,
            attempts: vec![0; n],
            causes: (0..n).map(|_| Vec::new()).collect(),
            death_slots: (0..n).map(|_| Vec::new()).collect(),
            dispatch_kills,
            retries: 0,
            reassignments: 0,
            last_death: None,
            recorder,
        }
    }

    fn task_id(&self, index: usize) -> u64 {
        (self.epoch << 32) | index as u64
    }

    /// Splits a wire task id back into `(epoch, index)`.
    fn split_task_id(id: u64) -> (u64, usize) {
        (id >> 32, (id & 0xFFFF_FFFF) as usize)
    }
}

/// Backoff before the `deaths`-th consecutive respawn of a slot:
/// 25 ms, 50 ms, 100 ms, ... capped at 500 ms.
fn respawn_backoff(consecutive_deaths: u32) -> Duration {
    let exp = consecutive_deaths.saturating_sub(1).min(16);
    RESPAWN_BACKOFF_BASE
        .saturating_mul(1u32 << exp.min(8))
        .min(RESPAWN_BACKOFF_CAP)
}

/// A pool of shared-nothing worker processes executing opaque task
/// payloads (see the module docs for the failure model).
pub struct ProcessPool {
    spec: WorkerSpec,
    config: ProcessPoolConfig,
    slots: Vec<Slot>,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    /// Stage counter; the high half of every task id.
    epoch: u64,
    respawns_used: usize,
    workers_spawned: u64,
    worker_kills: u64,
    worker_respawns: u64,
    task_reassignments: u64,
    poisoned_tasks: u64,
}

impl fmt::Debug for ProcessPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessPool")
            .field("workers", &self.config.workers)
            .field("live", &self.live_workers())
            .field("respawns_used", &self.respawns_used)
            .field("respawn_budget", &self.config.respawn_budget)
            .finish_non_exhaustive()
    }
}

impl ProcessPool {
    /// Spawns all worker slots. An initial spawn failure is fatal — if
    /// the worker binary cannot start even once, respawning will not
    /// help.
    pub fn spawn(spec: WorkerSpec, config: ProcessPoolConfig) -> Result<Self> {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::channel();
        let mut pool = Self {
            spec,
            config: ProcessPoolConfig { workers, ..config },
            slots: (0..workers).map(Slot::new).collect(),
            tx,
            rx,
            epoch: 0,
            respawns_used: 0,
            workers_spawned: 0,
            worker_kills: 0,
            worker_respawns: 0,
            task_reassignments: 0,
            poisoned_tasks: 0,
        };
        for slot in 0..workers {
            pool.spawn_slot(slot).map_err(|e| EngineError::WorkerLost {
                stage: "worker-pool spawn".to_owned(),
                worker: slot,
                respawns: 0,
                message: format!("failed to spawn worker process: {e}"),
            })?;
        }
        Ok(pool)
    }

    /// Number of slots currently holding a live child.
    pub fn live_workers(&self) -> usize {
        self.slots.iter().filter(|s| s.is_live()).count()
    }

    /// Number of worker slots (live or awaiting respawn).
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Pool-lifetime statistics.
    pub fn stats(&self) -> ProcessPoolStats {
        let per_worker: Vec<WorkerStats> = self.slots.iter().map(|s| s.stats.clone()).collect();
        let child_peak_rss_bytes = per_worker.iter().map(|w| w.peak_rss_bytes).sum();
        let child_cpu_time_us = per_worker.iter().map(|w| w.cpu_time_us).sum();
        ProcessPoolStats {
            workers: self.config.workers,
            workers_spawned: self.workers_spawned,
            worker_kills: self.worker_kills,
            worker_respawns: self.worker_respawns,
            task_reassignments: self.task_reassignments,
            poisoned_tasks: self.poisoned_tasks,
            child_peak_rss_bytes,
            child_cpu_time_us,
            per_worker,
        }
    }

    /// Runs one stage: every payload in `tasks` is executed exactly once
    /// by some live worker (re-dispatched across deaths), and results
    /// come back in task order. See the module docs for the failure
    /// model.
    ///
    /// When a `recorder` is supplied the stage emits telemetry into it:
    /// a parent-observed task span per completion (dispatch to result,
    /// IPC latency included), the worker-side spans shipped back over
    /// [`Frame::Telemetry`] rebased onto the parent clock and tagged
    /// with the worker's OS pid, and a `worker_kills` counter increment
    /// per death.
    pub fn run_stage(
        &mut self,
        label: &str,
        tasks: Vec<Vec<u8>>,
        recorder: Option<&dyn Recorder>,
    ) -> Result<StageOutcome> {
        self.epoch += 1;
        if tasks.len() >= u32::MAX as usize {
            return Err(EngineError::Internal {
                message: format!("stage {label:?} has too many tasks ({})", tasks.len()),
            });
        }
        let kills_before = self.worker_kills;
        let respawns_before = self.worker_respawns;
        let mut st = StageState::new(
            label,
            self.epoch,
            tasks,
            self.config.fault_plan.as_ref(),
            recorder,
        );
        let total = st.tasks.len();

        while st.completed < total {
            self.tick_respawns();
            if self.live_workers() == 0 && !self.slots.iter().any(|s| s.respawn_at.is_some()) {
                let (worker, message) = st
                    .last_death
                    .clone()
                    .unwrap_or((0, "no live worker processes".to_owned()));
                return Err(EngineError::WorkerLost {
                    stage: label.to_owned(),
                    worker,
                    respawns: self.respawns_used,
                    message,
                });
            }
            self.dispatch_pending(&mut st)?;
            match self.rx.recv_timeout(EVENT_TICK) {
                Ok(event) => self.handle_event(event, &mut st)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable: the pool holds a sender clone.
                    return Err(EngineError::Internal {
                        message: "worker event channel disconnected".to_owned(),
                    });
                }
            }
            self.check_deadlines(&mut st)?;
        }

        // Injected stage-end kills: the worker dies idle, after the
        // stage's results are all collected — the death is discovered
        // (and recovered from) at the start of the next stage.
        let end_kills = self
            .config
            .fault_plan
            .as_ref()
            .map(|p| p.worker_kills_at_stage_end(label))
            .unwrap_or_default();
        for slot in end_kills {
            if self.slots.get(slot).is_some_and(Slot::is_live) {
                self.mark_dead(slot, "fault injection: SIGKILL after stage end", None)?;
            }
        }

        let results = st.results.into_iter().map(Option::unwrap_or_default);
        Ok(StageOutcome {
            results: results.collect(),
            worker_kills: self.worker_kills - kills_before,
            worker_respawns: self.worker_respawns - respawns_before,
            task_reassignments: st.reassignments,
            task_retries: st.retries,
        })
    }

    /// Asks every live worker to exit, escalating to SIGKILL after
    /// [`SHUTDOWN_GRACE`]. Idempotent.
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if let Some(stdin) = slot.stdin.as_mut() {
                let _ = write_frame(stdin, &Frame::Shutdown);
            }
            // Closing stdin is the fallback exit signal for a worker
            // stuck before its next frame read.
            slot.stdin = None;
        }
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for slot in &mut self.slots {
            let Some(mut child) = slot.child.take() else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                    Err(_) => break,
                }
            }
            slot.incarnation += 1;
        }
    }

    fn spawn_slot(&mut self, index: usize) -> std::io::Result<()> {
        let mut cmd = self.spec.command(index);
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().ok_or_else(|| {
            let _ = child.kill();
            std::io::Error::other("worker child has no piped stdout")
        })?;
        let stdin = child.stdin.take().ok_or_else(|| {
            let _ = child.kill();
            std::io::Error::other("worker child has no piped stdin")
        })?;
        let slot = self
            .slots
            .get_mut(index)
            .ok_or_else(|| std::io::Error::other("worker slot index out of range"))?;
        slot.incarnation += 1;
        let incarnation = slot.incarnation;
        let tx = self.tx.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("dbscout-worker-reader-{index}"))
            .spawn(move || reader_loop(index, incarnation, stdout, tx));
        if let Err(e) = spawned {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
        slot.child = Some(child);
        slot.stdin = Some(stdin);
        slot.last_seen = Instant::now();
        slot.in_flight = None;
        slot.respawn_at = None;
        slot.stats.spawns += 1;
        self.workers_spawned += 1;
        Ok(())
    }

    /// Respawns every dead slot whose backoff has expired, burning one
    /// unit of budget per attempt (success or failure).
    fn tick_respawns(&mut self) {
        let now = Instant::now();
        for index in 0..self.slots.len() {
            let due = self
                .slots
                .get(index)
                .is_some_and(|s| !s.is_live() && s.respawn_at.is_some_and(|at| at <= now));
            if !due {
                continue;
            }
            if self.respawns_used >= self.config.respawn_budget {
                if let Some(slot) = self.slots.get_mut(index) {
                    slot.respawn_at = None;
                }
                continue;
            }
            self.respawns_used += 1;
            match self.spawn_slot(index) {
                Ok(()) => {
                    self.worker_respawns += 1;
                    if let Some(slot) = self.slots.get_mut(index) {
                        slot.stats.respawns += 1;
                    }
                }
                Err(_) => {
                    if let Some(slot) = self.slots.get_mut(index) {
                        slot.consecutive_deaths += 1;
                        slot.respawn_at = if self.respawns_used < self.config.respawn_budget {
                            Some(now + respawn_backoff(slot.consecutive_deaths))
                        } else {
                            None
                        };
                    }
                }
            }
        }
    }

    /// Hands pending tasks to idle live workers, applying injected
    /// dispatch kills synchronously.
    fn dispatch_pending(&mut self, st: &mut StageState<'_>) -> Result<()> {
        for index in 0..self.slots.len() {
            if st.pending.is_empty() {
                break;
            }
            let idle = self
                .slots
                .get(index)
                .is_some_and(|s| s.is_live() && s.in_flight.is_none());
            if !idle {
                continue;
            }
            let Some(task_index) = st.pending.pop_front() else {
                break;
            };
            let frame = Frame::Task {
                task: st.task_id(task_index),
                payload: st.tasks.get(task_index).cloned().unwrap_or_default(),
            };
            let write_result = match self.slots.get_mut(index).and_then(|s| {
                s.in_flight = Some(task_index);
                s.dispatched_at = Instant::now();
                s.stdin.as_mut()
            }) {
                Some(stdin) => write_frame(stdin, &frame),
                None => Err(IpcError::Io(std::io::Error::other("worker stdin missing"))),
            };
            if let Err(e) = write_result {
                // A broken pipe at dispatch means the worker died
                // between stages; recover exactly like a mid-task death.
                self.mark_dead(index, &format!("task dispatch failed: {e}"), Some(st))?;
                continue;
            }
            let injected = st
                .dispatch_kills
                .get_mut(task_index)
                .filter(|k| **k > 0)
                .map(|k| {
                    *k -= 1;
                })
                .is_some();
            if injected {
                self.mark_dead(index, "fault injection: SIGKILL at task dispatch", Some(st))?;
            }
        }
        Ok(())
    }

    fn handle_event(&mut self, event: Event, st: &mut StageState<'_>) -> Result<()> {
        match event {
            Event::Frame {
                slot,
                incarnation,
                frame,
            } => {
                let current = self
                    .slots
                    .get(slot)
                    .is_some_and(|s| s.is_live() && s.incarnation == incarnation);
                if !current {
                    return Ok(()); // stale incarnation: a presumed-dead worker
                }
                self.handle_frame(slot, frame, st)
            }
            Event::Closed {
                slot,
                incarnation,
                error,
            } => {
                let current = self
                    .slots
                    .get(slot)
                    .is_some_and(|s| s.is_live() && s.incarnation == incarnation);
                if !current {
                    return Ok(());
                }
                let reason = match error {
                    Some(e) => format!("worker pipe failed: {e}"),
                    None => "worker process exited unexpectedly".to_owned(),
                };
                self.mark_dead(slot, &reason, Some(st))
            }
        }
    }

    fn handle_frame(
        &mut self,
        slot_index: usize,
        frame: Frame,
        st: &mut StageState<'_>,
    ) -> Result<()> {
        let Some(slot) = self.slots.get_mut(slot_index) else {
            return Ok(());
        };
        slot.last_seen = Instant::now();
        match frame {
            Frame::Hello { pid, .. } => {
                slot.stats.pid = pid;
            }
            Frame::Heartbeat {
                vm_hwm_bytes,
                cpu_time_us,
                ..
            } => {
                slot.stats.peak_rss_bytes = slot.stats.peak_rss_bytes.max(vm_hwm_bytes);
                slot.stats.cpu_time_us = slot.stats.cpu_time_us.max(cpu_time_us);
            }
            Frame::Telemetry {
                task,
                cpu_time_us,
                spans,
            } => {
                slot.stats.cpu_time_us = slot.stats.cpu_time_us.max(cpu_time_us);
                let (epoch, index) = StageState::split_task_id(task);
                if epoch != st.epoch || slot.in_flight != Some(index) {
                    return Ok(()); // stale attempt: its spans stay out of the trace
                }
                if let Some(recorder) = st.recorder {
                    // Worker span offsets are relative to the moment the
                    // worker picked up the task; the closest parent-side
                    // anchor is the dispatch instant, so rebase there
                    // (the pipe transit skew is well under a tick).
                    let base = slot.dispatched_at;
                    for w in spans {
                        recorder.record_span(
                            Span::new(
                                w.name,
                                span_kind_from_wire(w.kind),
                                base + Duration::from_micros(w.start_us),
                                Duration::from_micros(w.dur_us),
                            )
                            .lane(w.lane)
                            .pid(slot.stats.pid)
                            .arg("partition", index),
                        );
                    }
                }
            }
            Frame::TaskOk {
                task,
                vm_hwm_bytes,
                payload,
            } => {
                slot.stats.peak_rss_bytes = slot.stats.peak_rss_bytes.max(vm_hwm_bytes);
                let (epoch, index) = StageState::split_task_id(task);
                if epoch != st.epoch || slot.in_flight != Some(index) {
                    return Ok(()); // stale or superseded result
                }
                slot.in_flight = None;
                slot.consecutive_deaths = 0;
                slot.stats.tasks_completed += 1;
                if let Some(recorder) = st.recorder {
                    // The parent-observed task span: dispatch write to
                    // result receipt, IPC latency included. It sits in
                    // the driver's pid lane; the worker's own view of
                    // the same task arrives via `Frame::Telemetry`.
                    recorder.record_span(
                        Span::new(
                            st.label.clone(),
                            SpanKind::Task,
                            slot.dispatched_at,
                            slot.dispatched_at.elapsed(),
                        )
                        .lane(slot_index as u64 + 1)
                        .arg("partition", index)
                        .arg("slot", slot_index),
                    );
                }
                if let Some(result) = st.results.get_mut(index) {
                    if result.is_none() {
                        *result = Some(payload);
                        st.completed += 1;
                    }
                }
            }
            Frame::TaskErr { task, message } => {
                let (epoch, index) = StageState::split_task_id(task);
                if epoch != st.epoch || slot.in_flight != Some(index) {
                    return Ok(());
                }
                slot.in_flight = None;
                if let Some(causes) = st.causes.get_mut(index) {
                    causes.push(format!("attempt {}: {message}", causes.len() + 1));
                }
                let attempts = match st.attempts.get_mut(index) {
                    Some(a) => {
                        *a += 1;
                        *a
                    }
                    None => return Ok(()),
                };
                if attempts > self.config.max_task_retries {
                    return Err(EngineError::TaskFailed {
                        stage: st.label.clone(),
                        partition: index,
                        attempts,
                        causes: st.causes.get(index).cloned().unwrap_or_default(),
                    });
                }
                st.retries += 1;
                st.pending.push_back(index);
            }
            // Parent-direction frames are never sent by workers.
            Frame::Task { .. } | Frame::Shutdown => {}
        }
        Ok(())
    }

    /// Declares every live worker silent past [`HEARTBEAT_DEADLINE`]
    /// dead — the recovery path for wedged (not crashed) workers.
    fn check_deadlines(&mut self, st: &mut StageState<'_>) -> Result<()> {
        let now = Instant::now();
        for index in 0..self.slots.len() {
            let expired = self.slots.get(index).is_some_and(|s| {
                s.is_live() && now.duration_since(s.last_seen) > HEARTBEAT_DEADLINE
            });
            if expired {
                self.mark_dead(index, "heartbeat deadline missed", Some(st))?;
            }
        }
        Ok(())
    }

    /// The single death path: kills and reaps the child, bumps the
    /// incarnation (staling any queued events), requeues the in-flight
    /// task, applies the poison rule, and schedules a respawn if budget
    /// remains.
    fn mark_dead(
        &mut self,
        index: usize,
        reason: &str,
        st: Option<&mut StageState<'_>>,
    ) -> Result<()> {
        let Some(slot) = self.slots.get_mut(index) else {
            return Ok(());
        };
        if !slot.is_live() {
            return Ok(());
        }
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.stdin = None;
        slot.incarnation += 1;
        slot.consecutive_deaths += 1;
        slot.stats.kills += 1;
        self.worker_kills += 1;
        let in_flight = slot.in_flight.take();
        if self.respawns_used < self.config.respawn_budget {
            slot.respawn_at = Some(Instant::now() + respawn_backoff(slot.consecutive_deaths));
        } else {
            slot.respawn_at = None;
        }
        let Some(st) = st else {
            return Ok(());
        };
        st.last_death = Some((index, reason.to_owned()));
        if let Some(recorder) = st.recorder {
            recorder.record_counter("worker_kills", 1);
        }
        let Some(task_index) = in_flight else {
            return Ok(());
        };
        let deaths = match st.death_slots.get_mut(task_index) {
            Some(deaths) => {
                if !deaths.contains(&index) {
                    deaths.push(index);
                }
                deaths.clone()
            }
            None => return Ok(()),
        };
        if deaths.len() >= 2 {
            // Poison input: the same task has now taken down two
            // distinct worker slots. Quarantine it (never dispatch it
            // again) and fail the stage with a precise diagnosis
            // instead of burning the whole respawn budget on it.
            self.poisoned_tasks += 1;
            return Err(EngineError::TaskFailed {
                stage: st.label.clone(),
                partition: task_index,
                attempts: deaths.len(),
                causes: vec![format!(
                    "poison input quarantined: task {task_index} killed {} distinct worker \
                     processes (slots {deaths:?}); last death: {reason}",
                    deaths.len()
                )],
            });
        }
        st.pending.push_front(task_index);
        st.reassignments += 1;
        self.task_reassignments += 1;
        Ok(())
    }
}

impl Drop for ProcessPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Wire encoding of a [`SpanKind`] for [`WireSpan::kind`].
pub fn span_kind_to_wire(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::Phase => 0,
        SpanKind::Stage => 1,
        SpanKind::Task => 2,
    }
}

/// Inverse of [`span_kind_to_wire`]; unknown bytes (a newer worker
/// speaking a richer taxonomy) degrade to [`SpanKind::Task`].
pub fn span_kind_from_wire(byte: u8) -> SpanKind {
    match byte {
        0 => SpanKind::Phase,
        1 => SpanKind::Stage,
        _ => SpanKind::Task,
    }
}

/// Worker-side span sink for one task execution, handed to the
/// [`serve_worker`] handler. `Instant`s cannot cross the process
/// boundary, so spans are stored as microsecond offsets from the sink's
/// creation (the moment the worker picked the task up); the parent
/// rebases them onto its own dispatch instant when merging.
#[derive(Debug)]
pub struct TaskSpans {
    base: Instant,
    lane: u64,
    spans: Vec<WireSpan>,
}

impl TaskSpans {
    /// A fresh sink whose offset origin is "now" and whose spans render
    /// in `lane` (the worker's slot index, typically).
    pub fn new(lane: u64) -> Self {
        Self {
            base: Instant::now(),
            lane,
            spans: Vec::new(),
        }
    }

    /// Records one completed span. `start` earlier than the sink's
    /// creation clamps to offset zero.
    pub fn record(&mut self, name: &str, kind: SpanKind, start: Instant, duration: Duration) {
        self.spans.push(WireSpan {
            name: name.to_owned(),
            kind: span_kind_to_wire(kind),
            start_us: start.saturating_duration_since(self.base).as_micros() as u64,
            dur_us: duration.as_micros() as u64,
            lane: self.lane,
        });
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn take(&mut self) -> Vec<WireSpan> {
        std::mem::take(&mut self.spans)
    }
}

/// Reads frames from one worker's stdout until EOF or error, forwarding
/// them to the pool's event loop tagged with the slot's incarnation.
fn reader_loop(slot: usize, incarnation: u64, mut stdout: ChildStdout, tx: Sender<Event>) {
    loop {
        match read_frame(&mut stdout) {
            Ok(Some(frame)) => {
                if tx
                    .send(Event::Frame {
                        slot,
                        incarnation,
                        frame,
                    })
                    .is_err()
                {
                    return; // pool dropped
                }
            }
            Ok(None) => {
                let _ = tx.send(Event::Closed {
                    slot,
                    incarnation,
                    error: None,
                });
                return;
            }
            Err(e) => {
                let _ = tx.send(Event::Closed {
                    slot,
                    incarnation,
                    error: Some(e.to_string()),
                });
                return;
            }
        }
    }
}

/// Runs the worker side of the protocol over this process's stdin and
/// stdout: announce with a hello, heartbeat from a background thread,
/// execute each task payload through `handler`, exit on shutdown or
/// parent hang-up.
///
/// `rss_probe` supplies the process's peak RSS (`VmHWM`) in bytes and
/// `cpu_probe` its cumulative CPU time (utime + stime) in microseconds,
/// for heartbeats and telemetry; pass `|| 0` where a probe is
/// unavailable. Each successful task is answered with a
/// [`Frame::Telemetry`] (the handler's recorded [`TaskSpans`] plus a
/// CPU sample) immediately followed by the [`Frame::TaskOk`] result. A
/// panicking handler aborts the whole process — by design: the process
/// backend's failure domain is the whole worker, and the parent
/// recovers by respawning it.
pub fn serve_worker<H>(
    mut handler: H,
    rss_probe: fn() -> u64,
    cpu_probe: fn() -> u64,
) -> std::result::Result<(), IpcError>
where
    H: FnMut(&[u8], &mut TaskSpans) -> std::result::Result<Vec<u8>, String>,
{
    let slot: u64 = std::env::var(ENV_WORKER_SLOT)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    write_frame(
        &mut *lock_unpoisoned(&stdout),
        &Frame::Hello {
            slot,
            pid: u64::from(std::process::id()),
        },
    )?;

    let stop = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::clone(&stop);
    let hb_out = Arc::clone(&stdout);
    let heartbeat = std::thread::Builder::new()
        .name("dbscout-worker-heartbeat".to_owned())
        .spawn(move || {
            let mut seq = 0u64;
            loop {
                std::thread::sleep(HEARTBEAT_INTERVAL);
                if hb_stop.load(Ordering::SeqCst) {
                    return;
                }
                seq += 1;
                let frame = Frame::Heartbeat {
                    seq,
                    vm_hwm_bytes: rss_probe(),
                    cpu_time_us: cpu_probe(),
                };
                if write_frame(&mut *lock_unpoisoned(&hb_out), &frame).is_err() {
                    return; // parent hung up; the main loop will see EOF
                }
            }
        });

    let mut stdin = std::io::stdin();
    let served = loop {
        match read_frame(&mut stdin) {
            Ok(Some(Frame::Task { task, payload })) => {
                let mut spans = TaskSpans::new(slot);
                let write_result = match handler(&payload, &mut spans) {
                    Ok(out) => {
                        // Telemetry rides immediately ahead of the
                        // result, under one lock acquisition, so the
                        // parent can validate both against the same
                        // still-in-flight task.
                        let mut out_handle = lock_unpoisoned(&stdout);
                        write_frame(
                            &mut *out_handle,
                            &Frame::Telemetry {
                                task,
                                cpu_time_us: cpu_probe(),
                                spans: spans.take(),
                            },
                        )
                        .and_then(|()| {
                            write_frame(
                                &mut *out_handle,
                                &Frame::TaskOk {
                                    task,
                                    vm_hwm_bytes: rss_probe(),
                                    payload: out,
                                },
                            )
                        })
                    }
                    Err(message) => write_frame(
                        &mut *lock_unpoisoned(&stdout),
                        &Frame::TaskErr { task, message },
                    ),
                };
                if let Err(e) = write_result {
                    break Err(e);
                }
            }
            // Shutdown frame or parent hang-up: exit cleanly.
            Ok(Some(Frame::Shutdown)) | Ok(None) => break Ok(()),
            // Child-direction frames are never sent by the parent.
            Ok(Some(_)) => {}
            Err(e) => break Err(e),
        }
    };
    stop.store(true, Ordering::SeqCst);
    if let Ok(handle) = heartbeat {
        let _ = handle.join();
    }
    // Flush any frame bytes still buffered in the handle.
    let _ = lock_unpoisoned(&stdout).flush();
    served
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(respawn_backoff(0), Duration::from_millis(25));
        assert_eq!(respawn_backoff(1), Duration::from_millis(25));
        assert_eq!(respawn_backoff(2), Duration::from_millis(50));
        assert_eq!(respawn_backoff(3), Duration::from_millis(100));
        assert_eq!(respawn_backoff(5), Duration::from_millis(400));
        assert_eq!(respawn_backoff(6), Duration::from_millis(500));
        assert_eq!(respawn_backoff(60), Duration::from_millis(500));
    }

    #[test]
    fn task_ids_pack_epoch_and_index() {
        let st = StageState::new("s", 7, vec![Vec::new(); 3], None, None);
        let id = st.task_id(2);
        assert_eq!(StageState::split_task_id(id), (7, 2));
        assert_eq!(
            StageState::split_task_id((1 << 32) | 0xFFFF_FFFF),
            (1, u32::MAX as usize)
        );
    }

    #[test]
    fn stage_state_seeds_dispatch_kills_from_the_plan() {
        let plan = FaultPlan::builder(1)
            .kill_worker_on_dispatch(Some("pass"), 1, 2)
            .kill_worker_on_dispatch(Some("other"), 0, 1)
            .build();
        let st = StageState::new(
            "core-point pass:join",
            1,
            vec![Vec::new(); 3],
            Some(&plan),
            None,
        );
        assert_eq!(st.dispatch_kills, vec![0, 2, 0]);
    }

    #[test]
    fn worker_spec_builds_commands_with_slot_env() {
        let spec = WorkerSpec::new("/bin/echo").arg("worker").env("K", "V");
        let cmd = spec.command(3);
        assert_eq!(cmd.get_program(), "/bin/echo");
        let args: Vec<_> = cmd.get_args().collect();
        assert_eq!(args, vec!["worker"]);
        let envs: Vec<_> = cmd
            .get_envs()
            .filter_map(|(k, v)| Some((k.to_str()?, v?.to_str()?)))
            .collect();
        assert!(envs.contains(&(ENV_WORKER_SLOT, "3")));
        assert!(envs.contains(&("K", "V")));
    }

    #[test]
    fn pool_config_clamps_workers() {
        let cfg = ProcessPoolConfig::new(0);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.respawn_budget, DEFAULT_RESPAWN_BUDGET);
    }

    #[test]
    fn spawn_failure_of_a_missing_binary_is_worker_lost() {
        let spec = WorkerSpec::new("/nonexistent/dbscout-worker-binary");
        let err = ProcessPool::spawn(spec, ProcessPoolConfig::new(2)).unwrap_err();
        match err {
            EngineError::WorkerLost { stage, .. } => assert!(stage.contains("spawn"), "{stage}"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// A pool over `cat` children: `cat` echoes nothing frame-shaped, so
    /// its clean exit after stdin closes exercises shutdown, and its
    /// silence exercises nothing else. (Real protocol round-trips are
    /// covered end to end by the CLI's process-backend tests, which have
    /// a genuine worker binary to spawn.)
    #[test]
    fn shutdown_reaps_protocol_ignorant_children() {
        let spec = WorkerSpec::new("/bin/cat");
        let mut pool = ProcessPool::spawn(spec, ProcessPoolConfig::new(2)).unwrap();
        assert_eq!(pool.live_workers(), 2);
        let stats = pool.stats();
        assert_eq!(stats.workers_spawned, 2);
        assert_eq!(stats.per_worker.len(), 2);
        pool.shutdown();
        assert_eq!(pool.live_workers(), 0);
    }

    #[test]
    fn span_kind_wire_encoding_round_trips() {
        for kind in [SpanKind::Phase, SpanKind::Stage, SpanKind::Task] {
            assert_eq!(span_kind_from_wire(span_kind_to_wire(kind)), kind);
        }
        // Unknown future kinds degrade to Task instead of failing.
        assert_eq!(span_kind_from_wire(200), SpanKind::Task);
    }

    #[test]
    fn task_spans_store_offsets_from_the_sink_origin() {
        let mut sink = TaskSpans::new(3);
        assert!(sink.is_empty());
        let base = sink.base;
        sink.record(
            "shard kernel",
            SpanKind::Task,
            base + Duration::from_micros(40),
            Duration::from_micros(700),
        );
        // A start before the origin clamps to zero instead of wrapping.
        sink.record(
            "pre-dispatch",
            SpanKind::Stage,
            base - Duration::from_micros(5),
            Duration::from_micros(1),
        );
        assert_eq!(sink.len(), 2);
        let spans = sink.take();
        assert_eq!(
            spans[0],
            WireSpan {
                name: "shard kernel".to_owned(),
                kind: span_kind_to_wire(SpanKind::Task),
                start_us: 40,
                dur_us: 700,
                lane: 3,
            }
        );
        assert_eq!(spans[1].start_us, 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn stats_sum_child_peak_rss_across_slots() {
        let stats = ProcessPoolStats {
            per_worker: vec![
                WorkerStats {
                    slot: 0,
                    peak_rss_bytes: 100,
                    ..WorkerStats::default()
                },
                WorkerStats {
                    slot: 1,
                    peak_rss_bytes: 250,
                    ..WorkerStats::default()
                },
            ],
            ..ProcessPoolStats::default()
        };
        // `stats()` derives the sum; mirror the derivation here.
        let sum: u64 = stats.per_worker.iter().map(|w| w.peak_rss_bytes).sum();
        assert_eq!(sum, 350);
    }
}
