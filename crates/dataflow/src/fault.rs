//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] decides, purely as a function of `(seed, stage name,
//! partition, attempt)`, whether a task attempt is sabotaged before it
//! runs — and how. Because the decision never consults the wall clock,
//! the OS, or scheduling order, a chaos test that replays the same plan
//! observes byte-identical faults on every run, which is what lets the
//! retry/speculation machinery be tested with exact-count assertions.
//!
//! Two fault sources compose:
//!
//! * **Seeded faults** — a hash of the stage name and partition picks a
//!   fault count in `0..=max_faults_per_task`; the first that many
//!   attempts of the task fail (kind chosen by the same hash), and every
//!   later attempt succeeds. This models a flaky cluster whose failures
//!   are bounded per task.
//! * **Scripted faults** — explicit `(stage substring, partition,
//!   attempt)` entries for tests that need a fault in one exact place.

use std::time::Duration;

/// What an injected fault does to a task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt fails as if the user closure panicked.
    Panic,
    /// The attempt fails with a transient (retryable) task error.
    Transient,
    /// The attempt is delayed by the given duration, then runs normally —
    /// a straggler, not a failure.
    Delay(Duration),
}

/// One scripted fault: fires when the stage name contains
/// `stage_contains` (or always, when `None`) for an exact
/// `(partition, attempt)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScriptedFault {
    stage_contains: Option<String>,
    partition: usize,
    attempt: usize,
    kind: FaultKind,
}

/// One scripted whole-worker kill (SIGKILL, process backend only).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScriptedWorkerKill {
    stage_contains: Option<String>,
    /// For dispatch kills: the task index whose dispatch triggers the
    /// kill. For stage-end kills: the worker slot to kill.
    target: usize,
    /// Dispatch kills only: how many dispatches of the task get their
    /// hosting worker killed (`2` is the poison-task scenario).
    times: usize,
    /// Whether the kill fires at task dispatch or after the stage's
    /// results are all collected (shuffle written).
    at_stage_end: bool,
}

/// A reproducible schedule of task faults (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    max_faults_per_task: u32,
    stage_filter: Option<String>,
    scripted: Vec<ScriptedFault>,
    worker_kills: Vec<ScriptedWorkerKill>,
    max_worker_kills_per_stage: u32,
}

impl FaultPlan {
    /// Starts building a plan from a seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan {
                seed,
                ..FaultPlan::default()
            },
        }
    }

    /// The fault (if any) to inject for this `(stage, partition, attempt)`.
    pub fn decide(&self, stage: &str, partition: usize, attempt: usize) -> Option<FaultKind> {
        for s in &self.scripted {
            let stage_matches = s
                .stage_contains
                .as_deref()
                .is_none_or(|needle| stage.contains(needle));
            if stage_matches && s.partition == partition && s.attempt == attempt {
                return Some(s.kind);
            }
        }
        if self.seeded_fault_count(stage, partition) > attempt as u64 {
            let kind = if mix(self.seed, stage, partition as u64, attempt as u64 ^ 0x51ED) & 1 == 0
            {
                FaultKind::Transient
            } else {
                FaultKind::Panic
            };
            return Some(kind);
        }
        None
    }

    /// How many failing attempts (Panic/Transient — delays excluded) this
    /// plan injects for `(stage, partition)` before the task is allowed to
    /// succeed. Property tests use this to bound retry budgets.
    pub fn fault_count(&self, stage: &str, partition: usize) -> usize {
        let scripted = self
            .scripted
            .iter()
            .filter(|s| {
                s.stage_contains
                    .as_deref()
                    .is_none_or(|needle| stage.contains(needle))
                    && s.partition == partition
                    && !matches!(s.kind, FaultKind::Delay(_))
            })
            .count();
        scripted + self.seeded_fault_count(stage, partition) as usize
    }

    /// Seeded fault count for `(stage, partition)`, honouring the stage
    /// filter. Attempts `0..count` fail; attempt `count` succeeds.
    fn seeded_fault_count(&self, stage: &str, partition: usize) -> u64 {
        if self.max_faults_per_task == 0 {
            return 0;
        }
        if let Some(needle) = self.stage_filter.as_deref() {
            if !stage.contains(needle) {
                return 0;
            }
        }
        mix(self.seed, stage, partition as u64, 0xC0DE) % (u64::from(self.max_faults_per_task) + 1)
    }

    /// The worker-kill events to fire when tasks of `stage` are
    /// dispatched, as sorted `(task index, kill count)` pairs: the hosting
    /// worker is SIGKILLed right after each of the task's first
    /// `kill count` dispatches, leaving the task in flight on a dead
    /// process — the "machine died mid-stage" failure.
    ///
    /// Scripted kills ([`FaultPlanBuilder::kill_worker_on_dispatch`])
    /// compose with seeded ones: with
    /// [`FaultPlanBuilder::max_worker_kills_per_stage`] set to `k`,
    /// exactly `k` tasks per matching stage are chosen by the seed (the
    /// seed picks *where*, `k` picks *how many*), each killed on its first
    /// dispatch. Decisions are a pure function of `(seed, stage,
    /// num_tasks)` — replaying a plan replays the same kills.
    pub fn worker_kills_on_dispatch(&self, stage: &str, num_tasks: usize) -> Vec<(usize, usize)> {
        let mut kills: Vec<(usize, usize)> = Vec::new();
        for k in &self.worker_kills {
            if k.at_stage_end || !self.kill_stage_matches(k.stage_contains.as_deref(), stage) {
                continue;
            }
            kills.push((k.target, k.times.max(1)));
        }
        if self.max_worker_kills_per_stage > 0 && num_tasks > 0 && self.seeded_stage_matches(stage)
        {
            // Draw until `max` *distinct* tasks are chosen (capped by the
            // task count), so "k kills per stage" means exactly k.
            let want = (self.max_worker_kills_per_stage as usize).min(num_tasks);
            let mut chosen: Vec<usize> = Vec::with_capacity(want);
            let mut draw = 0u64;
            while chosen.len() < want {
                let task = (mix(self.seed, stage, draw, 0x4B11) % num_tasks as u64) as usize;
                draw += 1;
                if !chosen.contains(&task) {
                    chosen.push(task);
                }
            }
            kills.extend(chosen.into_iter().map(|task| (task, 1)));
        }
        // Merge duplicate tasks (scripted + seeded may overlap) keeping
        // the larger kill count, and sort for deterministic iteration.
        kills.sort_unstable();
        kills.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = earlier.1.max(later.1);
                true
            } else {
                false
            }
        });
        kills
    }

    /// Worker slots to SIGKILL once all of `stage`'s results have been
    /// collected — an idle-worker death the pool only discovers on the
    /// next stage (heartbeat deadline or EOF), modelling a machine dying
    /// after its shuffle output was already fetched.
    pub fn worker_kills_at_stage_end(&self, stage: &str) -> Vec<usize> {
        let mut slots: Vec<usize> = self
            .worker_kills
            .iter()
            .filter(|k| {
                k.at_stage_end && self.kill_stage_matches(k.stage_contains.as_deref(), stage)
            })
            .map(|k| k.target)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    fn kill_stage_matches(&self, needle: Option<&str>, stage: &str) -> bool {
        needle.is_none_or(|needle| stage.contains(needle))
    }

    fn seeded_stage_matches(&self, stage: &str) -> bool {
        self.stage_filter
            .as_deref()
            .is_none_or(|needle| stage.contains(needle))
    }
}

/// Builder for [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Enables seeded faults: each `(stage, partition)` fails its first
    /// `0..=max` attempts (count drawn from the seed) before succeeding.
    pub fn max_faults_per_task(mut self, max: u32) -> Self {
        self.plan.max_faults_per_task = max;
        self
    }

    /// Restricts seeded faults to stages whose name contains `needle`
    /// (scripted faults carry their own filter).
    pub fn only_stages_containing(mut self, needle: impl Into<String>) -> Self {
        self.plan.stage_filter = Some(needle.into());
        self
    }

    /// Scripts one fault for an exact `(partition, attempt)` in any stage.
    pub fn inject(self, partition: usize, attempt: usize, kind: FaultKind) -> Self {
        self.inject_in_stages(None::<String>, partition, attempt, kind)
    }

    /// Scripts one fault for `(partition, attempt)` in stages whose name
    /// contains `stage` (pass `None` to match every stage).
    pub fn inject_in_stages(
        mut self,
        stage: Option<impl Into<String>>,
        partition: usize,
        attempt: usize,
        kind: FaultKind,
    ) -> Self {
        self.plan.scripted.push(ScriptedFault {
            stage_contains: stage.map(Into::into),
            partition,
            attempt,
            kind,
        });
        self
    }

    /// Enables seeded whole-worker kills (process backend): in every
    /// stage matching the seeded-fault stage filter, exactly `max` tasks
    /// — chosen by the seed — get their hosting worker SIGKILLed on first
    /// dispatch.
    pub fn max_worker_kills_per_stage(mut self, max: u32) -> Self {
        self.plan.max_worker_kills_per_stage = max;
        self
    }

    /// Scripts whole-worker kills at task dispatch: in stages whose name
    /// contains `stage` (`None` = every stage), the worker hosting task
    /// `task` is SIGKILLed right after each of the task's first `times`
    /// dispatches. `times >= 2` makes the same task kill distinct
    /// workers — the poison-task scenario.
    pub fn kill_worker_on_dispatch(
        mut self,
        stage: Option<impl Into<String>>,
        task: usize,
        times: usize,
    ) -> Self {
        self.plan.worker_kills.push(ScriptedWorkerKill {
            stage_contains: stage.map(Into::into),
            target: task,
            times,
            at_stage_end: false,
        });
        self
    }

    /// Scripts a whole-worker kill after a stage completes: once every
    /// result of a stage whose name contains `stage` (`None` = every
    /// stage) has been collected, worker slot `slot` is SIGKILLed while
    /// idle — a death the pool discovers on the next stage.
    pub fn kill_worker_at_stage_end(
        mut self,
        stage: Option<impl Into<String>>,
        slot: usize,
    ) -> Self {
        self.plan.worker_kills.push(ScriptedWorkerKill {
            stage_contains: stage.map(Into::into),
            target: slot,
            times: 1,
            at_stage_end: true,
        });
        self
    }

    /// Finalises the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// FNV-1a over the stage name, mixed with the seed/partition/salt through
/// a SplitMix64 finaliser — deterministic and well distributed without
/// pulling in the engine RNG.
fn mix(seed: u64, stage: &str, partition: u64, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in stage.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h
        ^ seed.rotate_left(17)
        ^ partition.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::builder(7).max_faults_per_task(3).build();
        let b = FaultPlan::builder(7).max_faults_per_task(3).build();
        for p in 0..32 {
            for attempt in 0..5 {
                assert_eq!(
                    a.decide("map", p, attempt),
                    b.decide("map", p, attempt),
                    "partition {p} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn seeded_faults_respect_the_count() {
        let plan = FaultPlan::builder(0xFA11).max_faults_per_task(4).build();
        for p in 0..64 {
            let count = plan.fault_count("reduce", p);
            assert!(count <= 4);
            for attempt in 0..count {
                assert!(plan.decide("reduce", p, attempt).is_some());
            }
            // The first attempt past the budget always succeeds.
            assert_eq!(plan.decide("reduce", p, count), None);
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultPlan::builder(1).max_faults_per_task(3).build();
        let b = FaultPlan::builder(2).max_faults_per_task(3).build();
        let differs = (0..256).any(|p| a.fault_count("map", p) != b.fault_count("map", p));
        assert!(differs, "seeds 1 and 2 produced identical plans");
    }

    #[test]
    fn scripted_faults_hit_exactly() {
        let plan = FaultPlan::builder(0)
            .inject(3, 0, FaultKind::Transient)
            .inject_in_stages(Some("outlier"), 5, 1, FaultKind::Panic)
            .build();
        assert_eq!(plan.decide("map", 3, 0), Some(FaultKind::Transient));
        assert_eq!(plan.decide("map", 3, 1), None);
        assert_eq!(plan.decide("map", 5, 1), None);
        assert_eq!(
            plan.decide("outlier pass:join", 5, 1),
            Some(FaultKind::Panic)
        );
        assert_eq!(plan.fault_count("map", 3), 1);
        assert_eq!(plan.fault_count("outlier pass:join", 5), 1);
    }

    #[test]
    fn delays_do_not_count_as_faults() {
        let plan = FaultPlan::builder(0)
            .inject(0, 0, FaultKind::Delay(Duration::from_millis(1)))
            .build();
        assert_eq!(
            plan.decide("map", 0, 0),
            Some(FaultKind::Delay(Duration::from_millis(1)))
        );
        assert_eq!(plan.fault_count("map", 0), 0);
    }

    #[test]
    fn scripted_worker_kills_hit_their_stage_and_merge() {
        let plan = FaultPlan::builder(0)
            .kill_worker_on_dispatch(Some("core-point"), 3, 2)
            .kill_worker_on_dispatch(None::<String>, 3, 1)
            .kill_worker_on_dispatch(None::<String>, 1, 1)
            .kill_worker_at_stage_end(Some("core-point"), 0)
            .build();
        // Duplicate task 3 keeps the larger kill count; output is sorted.
        assert_eq!(
            plan.worker_kills_on_dispatch("core-point pass", 8),
            vec![(1, 1), (3, 2)]
        );
        assert_eq!(
            plan.worker_kills_on_dispatch("outlier pass", 8),
            vec![(1, 1), (3, 1)]
        );
        assert_eq!(plan.worker_kills_at_stage_end("core-point pass"), vec![0]);
        assert!(plan.worker_kills_at_stage_end("outlier pass").is_empty());
    }

    #[test]
    fn seeded_worker_kills_are_deterministic_and_exact_in_count() {
        let plan = FaultPlan::builder(42).max_worker_kills_per_stage(1).build();
        let a = plan.worker_kills_on_dispatch("core-point pass", 16);
        let b = plan.worker_kills_on_dispatch("core-point pass", 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1, "exactly one seeded kill per stage: {a:?}");
        assert!(a[0].0 < 16);
        assert_eq!(a[0].1, 1);
        // The seed picks *where*: another seed moves the kill somewhere
        // (checked over several stages so a single collision can't pass).
        let other = FaultPlan::builder(43).max_worker_kills_per_stage(1).build();
        let moved = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"]
            .iter()
            .any(|s| plan.worker_kills_on_dispatch(s, 64) != other.worker_kills_on_dispatch(s, 64));
        assert!(moved, "seeds 42 and 43 produced identical kill plans");
        // No tasks, no kills.
        assert!(plan
            .worker_kills_on_dispatch("core-point pass", 0)
            .is_empty());
    }

    #[test]
    fn stage_filter_gates_seeded_worker_kills() {
        let plan = FaultPlan::builder(9)
            .max_worker_kills_per_stage(2)
            .only_stages_containing("outlier")
            .build();
        assert_eq!(plan.worker_kills_on_dispatch("outlier pass", 8).len(), 2);
        assert!(plan
            .worker_kills_on_dispatch("core-point pass", 8)
            .is_empty());
    }

    #[test]
    fn stage_filter_gates_seeded_faults() {
        let plan = FaultPlan::builder(0xFA11)
            .max_faults_per_task(4)
            .only_stages_containing("core-point")
            .build();
        let faulted: usize = (0..64)
            .map(|p| plan.fault_count("core-point pass:map", p))
            .sum();
        assert!(faulted > 0, "filter should still allow matching stages");
        let elsewhere: usize = (0..64)
            .map(|p| plan.fault_count("outlier pass:map", p))
            .sum();
        assert_eq!(elsewhere, 0, "filtered stages must be fault-free");
    }
}
