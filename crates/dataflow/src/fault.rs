//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] decides, purely as a function of `(seed, stage name,
//! partition, attempt)`, whether a task attempt is sabotaged before it
//! runs — and how. Because the decision never consults the wall clock,
//! the OS, or scheduling order, a chaos test that replays the same plan
//! observes byte-identical faults on every run, which is what lets the
//! retry/speculation machinery be tested with exact-count assertions.
//!
//! Two fault sources compose:
//!
//! * **Seeded faults** — a hash of the stage name and partition picks a
//!   fault count in `0..=max_faults_per_task`; the first that many
//!   attempts of the task fail (kind chosen by the same hash), and every
//!   later attempt succeeds. This models a flaky cluster whose failures
//!   are bounded per task.
//! * **Scripted faults** — explicit `(stage substring, partition,
//!   attempt)` entries for tests that need a fault in one exact place.

use std::time::Duration;

/// What an injected fault does to a task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt fails as if the user closure panicked.
    Panic,
    /// The attempt fails with a transient (retryable) task error.
    Transient,
    /// The attempt is delayed by the given duration, then runs normally —
    /// a straggler, not a failure.
    Delay(Duration),
}

/// One scripted fault: fires when the stage name contains
/// `stage_contains` (or always, when `None`) for an exact
/// `(partition, attempt)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScriptedFault {
    stage_contains: Option<String>,
    partition: usize,
    attempt: usize,
    kind: FaultKind,
}

/// A reproducible schedule of task faults (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    max_faults_per_task: u32,
    stage_filter: Option<String>,
    scripted: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// Starts building a plan from a seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan {
                seed,
                ..FaultPlan::default()
            },
        }
    }

    /// The fault (if any) to inject for this `(stage, partition, attempt)`.
    pub fn decide(&self, stage: &str, partition: usize, attempt: usize) -> Option<FaultKind> {
        for s in &self.scripted {
            let stage_matches = s
                .stage_contains
                .as_deref()
                .is_none_or(|needle| stage.contains(needle));
            if stage_matches && s.partition == partition && s.attempt == attempt {
                return Some(s.kind);
            }
        }
        if self.seeded_fault_count(stage, partition) > attempt as u64 {
            let kind = if mix(self.seed, stage, partition as u64, attempt as u64 ^ 0x51ED) & 1 == 0
            {
                FaultKind::Transient
            } else {
                FaultKind::Panic
            };
            return Some(kind);
        }
        None
    }

    /// How many failing attempts (Panic/Transient — delays excluded) this
    /// plan injects for `(stage, partition)` before the task is allowed to
    /// succeed. Property tests use this to bound retry budgets.
    pub fn fault_count(&self, stage: &str, partition: usize) -> usize {
        let scripted = self
            .scripted
            .iter()
            .filter(|s| {
                s.stage_contains
                    .as_deref()
                    .is_none_or(|needle| stage.contains(needle))
                    && s.partition == partition
                    && !matches!(s.kind, FaultKind::Delay(_))
            })
            .count();
        scripted + self.seeded_fault_count(stage, partition) as usize
    }

    /// Seeded fault count for `(stage, partition)`, honouring the stage
    /// filter. Attempts `0..count` fail; attempt `count` succeeds.
    fn seeded_fault_count(&self, stage: &str, partition: usize) -> u64 {
        if self.max_faults_per_task == 0 {
            return 0;
        }
        if let Some(needle) = self.stage_filter.as_deref() {
            if !stage.contains(needle) {
                return 0;
            }
        }
        mix(self.seed, stage, partition as u64, 0xC0DE) % (u64::from(self.max_faults_per_task) + 1)
    }
}

/// Builder for [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Enables seeded faults: each `(stage, partition)` fails its first
    /// `0..=max` attempts (count drawn from the seed) before succeeding.
    pub fn max_faults_per_task(mut self, max: u32) -> Self {
        self.plan.max_faults_per_task = max;
        self
    }

    /// Restricts seeded faults to stages whose name contains `needle`
    /// (scripted faults carry their own filter).
    pub fn only_stages_containing(mut self, needle: impl Into<String>) -> Self {
        self.plan.stage_filter = Some(needle.into());
        self
    }

    /// Scripts one fault for an exact `(partition, attempt)` in any stage.
    pub fn inject(self, partition: usize, attempt: usize, kind: FaultKind) -> Self {
        self.inject_in_stages(None::<String>, partition, attempt, kind)
    }

    /// Scripts one fault for `(partition, attempt)` in stages whose name
    /// contains `stage` (pass `None` to match every stage).
    pub fn inject_in_stages(
        mut self,
        stage: Option<impl Into<String>>,
        partition: usize,
        attempt: usize,
        kind: FaultKind,
    ) -> Self {
        self.plan.scripted.push(ScriptedFault {
            stage_contains: stage.map(Into::into),
            partition,
            attempt,
            kind,
        });
        self
    }

    /// Finalises the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// FNV-1a over the stage name, mixed with the seed/partition/salt through
/// a SplitMix64 finaliser — deterministic and well distributed without
/// pulling in the engine RNG.
fn mix(seed: u64, stage: &str, partition: u64, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in stage.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h
        ^ seed.rotate_left(17)
        ^ partition.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::builder(7).max_faults_per_task(3).build();
        let b = FaultPlan::builder(7).max_faults_per_task(3).build();
        for p in 0..32 {
            for attempt in 0..5 {
                assert_eq!(
                    a.decide("map", p, attempt),
                    b.decide("map", p, attempt),
                    "partition {p} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn seeded_faults_respect_the_count() {
        let plan = FaultPlan::builder(0xFA11).max_faults_per_task(4).build();
        for p in 0..64 {
            let count = plan.fault_count("reduce", p);
            assert!(count <= 4);
            for attempt in 0..count {
                assert!(plan.decide("reduce", p, attempt).is_some());
            }
            // The first attempt past the budget always succeeds.
            assert_eq!(plan.decide("reduce", p, count), None);
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = FaultPlan::builder(1).max_faults_per_task(3).build();
        let b = FaultPlan::builder(2).max_faults_per_task(3).build();
        let differs = (0..256).any(|p| a.fault_count("map", p) != b.fault_count("map", p));
        assert!(differs, "seeds 1 and 2 produced identical plans");
    }

    #[test]
    fn scripted_faults_hit_exactly() {
        let plan = FaultPlan::builder(0)
            .inject(3, 0, FaultKind::Transient)
            .inject_in_stages(Some("outlier"), 5, 1, FaultKind::Panic)
            .build();
        assert_eq!(plan.decide("map", 3, 0), Some(FaultKind::Transient));
        assert_eq!(plan.decide("map", 3, 1), None);
        assert_eq!(plan.decide("map", 5, 1), None);
        assert_eq!(
            plan.decide("outlier pass:join", 5, 1),
            Some(FaultKind::Panic)
        );
        assert_eq!(plan.fault_count("map", 3), 1);
        assert_eq!(plan.fault_count("outlier pass:join", 5), 1);
    }

    #[test]
    fn delays_do_not_count_as_faults() {
        let plan = FaultPlan::builder(0)
            .inject(0, 0, FaultKind::Delay(Duration::from_millis(1)))
            .build();
        assert_eq!(
            plan.decide("map", 0, 0),
            Some(FaultKind::Delay(Duration::from_millis(1)))
        );
        assert_eq!(plan.fault_count("map", 0), 0);
    }

    #[test]
    fn stage_filter_gates_seeded_faults() {
        let plan = FaultPlan::builder(0xFA11)
            .max_faults_per_task(4)
            .only_stages_containing("core-point")
            .build();
        let faulted: usize = (0..64)
            .map(|p| plan.fault_count("core-point pass:map", p))
            .sum();
        assert!(faulted > 0, "filter should still allow matching stages");
        let elsewhere: usize = (0..64)
            .map(|p| plan.fault_count("outlier pass:map", p))
            .sum();
        assert_eq!(elsewhere, 0, "filtered stages must be fault-free");
    }
}
