//! Deterministic hash partitioning.
//!
//! Spark's `HashPartitioner` decides, for every key, which reducer
//! partition receives it. We reproduce that with SipHash-1-3 using fixed
//! keys (the hasher behind [`std::collections::hash_map::DefaultHasher`]),
//! so the partition assignment — and therefore every experiment — is
//! reproducible across runs and machines.

use std::collections::hash_map::DefaultHasher;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};

/// A deterministic `BuildHasher` for engine-internal hash maps.
///
/// `std`'s default `RandomState` is seeded per process; using it for
/// shuffles would make partition contents differ between runs.
pub type DeterministicState = BuildHasherDefault<DefaultHasher>;

/// A `HashMap` with deterministic hashing (stable partition assignment).
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, DeterministicState>;

/// Hashes a key with the deterministic hasher.
pub fn hash_key<K: Hash + ?Sized>(key: &K) -> u64 {
    DeterministicState::default().hash_one(key)
}

/// Assigns a key to one of `num_partitions` shuffle partitions.
///
/// # Panics
///
/// Panics if `num_partitions` is zero; callers validate partition counts
/// at the API boundary.
pub fn partition_for<K: Hash + ?Sized>(key: &K, num_partitions: usize) -> usize {
    assert!(num_partitions > 0, "partition count must be >= 1");
    (hash_key(key) % num_partitions as u64) as usize
}

/// Scatters an iterator of keyed records into `num_partitions` buckets by
/// key hash. This is the map-side half of a shuffle.
pub fn scatter<K: Hash, V>(
    records: impl IntoIterator<Item = (K, V)>,
    num_partitions: usize,
) -> Vec<Vec<(K, V)>> {
    let mut buckets: Vec<Vec<(K, V)>> = (0..num_partitions).map(|_| Vec::new()).collect();
    for (k, v) in records {
        let p = partition_for(&k, num_partitions);
        if let Some(bucket) = buckets.get_mut(p) {
            bucket.push((k, v));
        }
    }
    buckets
}

/// Transposes map-side buckets into reduce-side partitions: output
/// partition `p` receives bucket `p` of every input task, in task order.
/// This is the reduce-side half of a shuffle.
pub fn gather<T>(mut per_task_buckets: Vec<Vec<Vec<T>>>, num_partitions: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..num_partitions).map(|_| Vec::new()).collect();
    for task_buckets in &mut per_task_buckets {
        debug_assert_eq!(task_buckets.len(), num_partitions);
        for (p, bucket) in task_buckets.drain(..).enumerate() {
            if let Some(slot) = out.get_mut(p) {
                slot.extend(bucket);
            }
        }
    }
    out
}

/// Drains a deterministic hash map into a `Vec` in a canonical order:
/// ascending key hash, ties broken by the map's (deterministic) drain
/// order.
///
/// Hash maps iterate in hash-bucket layout order, which depends on
/// insertion history. Reduce-side operators drain their per-partition
/// maps through this helper so partition contents are a pure function of
/// the record multiset — independent of task schedule or insertion order
/// — keeping the engine's byte-identical-output guarantee (and the lint
/// suite's XL007 determinism rule) honest. Keys need only be `Hash`, not
/// `Ord`, which is exactly the bound shuffle keys already carry.
pub fn drain_by_key_hash<K: Hash, V>(map: DetHashMap<K, V>) -> Vec<(K, V)> {
    // xlint: ordered -- this is the canonicalizer: sorted on the next line
    let mut entries: Vec<(K, V)> = map.into_iter().collect();
    entries.sort_by_key(|(k, _)| hash_key(k));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_key(&42u64), hash_key(&42u64));
        assert_eq!(hash_key("abc"), hash_key("abc"));
    }

    #[test]
    fn partition_in_range() {
        for k in 0..1000u64 {
            assert!(partition_for(&k, 7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn zero_partitions_panics() {
        partition_for(&1u64, 0);
    }

    #[test]
    fn scatter_preserves_all_records() {
        let records: Vec<(u64, u64)> = (0..500).map(|i| (i, i * 10)).collect();
        let buckets = scatter(records.clone(), 8);
        assert_eq!(buckets.len(), 8);
        let mut all: Vec<_> = buckets.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, records);
    }

    #[test]
    fn scatter_same_key_same_bucket() {
        let records = vec![(7u64, 'a'), (7u64, 'b'), (7u64, 'c')];
        let buckets = scatter(records, 5);
        let non_empty: Vec<_> = buckets.iter().filter(|b| !b.is_empty()).collect();
        assert_eq!(non_empty.len(), 1);
        assert_eq!(non_empty[0].len(), 3);
    }

    #[test]
    fn drain_by_key_hash_is_insertion_order_independent() {
        let mut forward = DetHashMap::default();
        let mut reverse = DetHashMap::default();
        for i in 0..1000u64 {
            forward.insert(i, i * 3);
        }
        for i in (0..1000u64).rev() {
            reverse.insert(i, i * 3);
        }
        // Different insertion histories (and hence potentially different
        // bucket layouts) must drain identically.
        assert_eq!(drain_by_key_hash(forward), drain_by_key_hash(reverse));
    }

    #[test]
    fn gather_transposes() {
        // Two map tasks, three reduce partitions.
        let task0 = vec![vec![1], vec![2], vec![3]];
        let task1 = vec![vec![10], vec![], vec![30, 31]];
        let out = gather(vec![task0, task1], 3);
        assert_eq!(out, vec![vec![1, 10], vec![2], vec![3, 30, 31]]);
    }

    #[test]
    fn scatter_distributes_reasonably() {
        // With many distinct keys, no bucket should be empty for 4 parts.
        let records: Vec<(u64, ())> = (0..10_000).map(|i| (i, ())).collect();
        let buckets = scatter(records, 4);
        for b in &buckets {
            // Expect ~2500 per bucket; allow wide tolerance.
            assert!(
                b.len() > 1500 && b.len() < 3500,
                "skewed bucket: {}",
                b.len()
            );
        }
    }
}
