//! `cargo xtask lint` — the DBSCOUT workspace's custom static-analysis
//! suite.
//!
//! Five rule families guard invariants the paper's exactness claims rest
//! on (see `DESIGN.md`, "Static analysis & invariants"):
//!
//! * **XL001 panic-freedom** — library code in `dbscout-core`,
//!   `dbscout-spatial` and `dbscout-dataflow` must not contain
//!   `.unwrap()`, `.expect(...)`, `panic!`, `todo!`, `unreachable!`,
//!   `unimplemented!` or slice indexing; detection must degrade to a
//!   `Result`, never a crash, on billion-point inputs.
//! * **XL002 float-comparison discipline** — no direct `==`/`!=` with
//!   float operands, and distance-vs-threshold predicates must go through
//!   `dbscout_spatial::distance::within` (the closed-ball convention of
//!   Definition 2 lives in exactly one place).
//! * **XL003 parameter-validation coverage** — every `pub fn` in
//!   `dbscout-core` accepting raw `eps`/`min_pts` must reach a validation
//!   call before using them.
//! * **XL004 error-type hygiene** — every public type in a crate's
//!   `error.rs` implements `Display` + `std::error::Error` and asserts
//!   `Send + Sync + 'static` at compile time.
//! * **XL005 `catch_unwind` confinement** — panic recovery is the
//!   dataflow executor's task boundary; `catch_unwind` anywhere else
//!   hides bugs the retry machinery would surface.
//! * **XL006 stream hygiene** — no `println!`/`eprintln!` (or the
//!   non-newline forms) in library crates (`core`, `spatial`,
//!   `dataflow`, `data`, `telemetry`); a library that prints corrupts
//!   machine-readable output and cannot be silenced, so diagnostics go
//!   through the `dbscout-telemetry` recorder or returned values.
//! * **XL007 determinism** — no iteration over hash-ordered containers
//!   (`HashMap`/`HashSet`/`DetHashMap`) in the result-affecting crates
//!   (`core`, `spatial`, `dataflow`); the byte-identical-labels
//!   guarantee must not depend on hash-bucket layout. Order-insensitive
//!   sites are waived per site with `// xlint: ordered -- <reason>`.
//! * **XL008 lock discipline** — inside `dbscout-dataflow` every
//!   `lock()`/`try_lock()` goes through `executor::lock_unpoisoned`, and
//!   no guard is held across a task-boundary call.
//! * **XL009 atomic-ordering discipline** — no `Ordering::Relaxed` on
//!   atomic loads/stores in `core`/`spatial`/`dataflow`; values that
//!   gate cross-thread visibility need Acquire/Release edges.
//! * **XL010 kernel-lane confinement** — lane-unrolled distance loops
//!   and architecture intrinsics (`std::arch`, `target_feature`) live
//!   only in `crates/spatial/src/distance.rs` and `cell_major.rs`,
//!   where the scalar-equivalence suite pins them; everywhere else they
//!   bypass the byte-identical-labels audit.
//!
//! The binary also hosts `cargo xtask check-report <file>`, which
//! validates a `dbscout detect --report-json` document against the
//! run-report schema (see [`report_check`]), and `cargo xtask
//! check-trace <file>`, which validates a `--trace-out` Chrome Trace
//! (see [`trace_check`]).
//!
//! Escape hatch: `// xtask-lint: allow(XL001) -- <justification>` on (or
//! directly above) the offending line. The justification is mandatory;
//! a hatch without one is reported as `XL000`.
//!
//! Implementation note: the toolchain here has no network access, so
//! `syn` is unavailable; rules run as token scans over comment/string-
//! stripped source (see [`lexer`]), with `cargo clippy`'s type-aware
//! `unwrap_used`/`float_cmp` lints as the compiler-grade backstop.

// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
pub mod diag;
pub mod layout_check;
pub mod lexer;
pub mod report_check;
pub mod rules;
pub mod trace_check;

use std::path::{Path, PathBuf};

pub use diag::{render_json_report, Diagnostic};
use rules::Scope;

/// Crates whose library code must be panic-free (ROADMAP tier-1 engines).
const PANIC_FREE_CRATES: [&str; 3] = ["core", "spatial", "dataflow"];
/// Crates where raw distance comparisons are forbidden (the helpers live
/// in `dbscout-spatial::distance`, which is exempt along with the rest of
/// spatial's internal pruning code).
const DISTANCE_SCOPED_CRATES: [&str; 2] = ["core", "dataflow"];
/// Library crates that must never write to stdout/stderr (XL006): they
/// are embedded by the CLI and bench binaries, whose machine-readable
/// output (`--trace-out`, `--report-json`, result tables) must stay
/// uncorrupted.
const STDOUT_FREE_CRATES: [&str; 5] = ["core", "spatial", "dataflow", "data", "telemetry"];

/// Derives which rules apply to `rel_path` (workspace-relative, `/`
/// separators).
pub fn scope_for(rel_path: &str) -> Scope {
    let in_crate = |name: &str| rel_path.starts_with(&format!("crates/{name}/src/"));
    let panic_freedom = PANIC_FREE_CRATES.iter().any(|c| in_crate(c));
    Scope {
        panic_freedom,
        float_eq: panic_freedom && rel_path != "crates/spatial/src/distance.rs",
        distance_predicate: DISTANCE_SCOPED_CRATES.iter().any(|c| in_crate(c)),
        param_validation: in_crate("core"),
        error_hygiene: rel_path.ends_with("/error.rs"),
        // The executor is the sanctioned panic boundary; xtask itself must
        // name the token to hunt for it.
        catch_unwind: rel_path != "crates/dataflow/src/executor.rs" && !in_crate("xtask"),
        no_stdout: STDOUT_FREE_CRATES.iter().any(|c| in_crate(c)),
        // Determinism and atomic-ordering discipline cover the crates
        // whose output reaches labels; lock discipline is about the
        // executor's mutexes, all of which live in the dataflow crate.
        determinism: panic_freedom,
        lock_discipline: in_crate("dataflow"),
        atomic_ordering: panic_freedom,
        // Lane kernels are confined to the two audited spatial modules;
        // xtask itself must name the tokens to hunt for them.
        kernel_lane: !in_crate("xtask")
            && rel_path != "crates/spatial/src/distance.rs"
            && rel_path != "crates/spatial/src/cell_major.rs",
    }
}

/// Lints one file's source text under the given scope. This is the unit
/// the fixture self-tests drive directly.
pub fn lint_source(rel_path: &str, source: &str, scope: Scope) -> Vec<Diagnostic> {
    let cleaned = lexer::clean(source);
    let spans = rules::test_spans(&cleaned);
    let mut out = Vec::new();
    for &line in &cleaned.malformed {
        out.push(Diagnostic {
            rule: "XL000",
            file: rel_path.to_string(),
            line,
            col: 1,
            message: "malformed lint directive comment".to_string(),
            help: "the forms are `// xtask-lint: allow(XL00n) -- <justification>` and \
                   `// xlint: ordered -- <justification>`; the justification is mandatory"
                .to_string(),
        });
    }
    if scope.panic_freedom {
        rules::panic_freedom(&cleaned, rel_path, &spans, &mut out);
    }
    if scope.float_eq || scope.distance_predicate {
        rules::float_discipline(&cleaned, rel_path, scope, &spans, &mut out);
    }
    if scope.param_validation {
        rules::param_validation(&cleaned, rel_path, &spans, &mut out);
    }
    if scope.error_hygiene {
        rules::error_hygiene(&cleaned, rel_path, &mut out);
    }
    if scope.catch_unwind {
        rules::catch_unwind_confinement(&cleaned, rel_path, &spans, &mut out);
    }
    if scope.no_stdout {
        rules::stdout_discipline(&cleaned, rel_path, &spans, &mut out);
    }
    if scope.determinism {
        rules::determinism(&cleaned, rel_path, &spans, &mut out);
    }
    if scope.lock_discipline {
        rules::lock_discipline(&cleaned, rel_path, &spans, &mut out);
    }
    if scope.atomic_ordering {
        rules::atomic_ordering(&cleaned, rel_path, &spans, &mut out);
    }
    if scope.kernel_lane {
        rules::kernel_lane(&cleaned, rel_path, &spans, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out
}

/// Recursively collects `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` under `root`. Returns all findings
/// sorted by file/line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        out.extend(lint_source(&rel, &source, scope_for(&rel)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_follow_the_policy() {
        let core = scope_for("crates/core/src/native.rs");
        assert!(core.panic_freedom && core.float_eq && core.distance_predicate);
        assert!(core.param_validation && !core.error_hygiene);
        assert!(core.no_stdout);

        let dist = scope_for("crates/spatial/src/distance.rs");
        assert!(dist.panic_freedom && !dist.float_eq && !dist.distance_predicate);

        let err = scope_for("crates/dataflow/src/error.rs");
        assert!(err.error_hygiene && err.panic_freedom && err.catch_unwind);

        // The executor is the one module allowed to recover from panics.
        assert!(!scope_for("crates/dataflow/src/executor.rs").catch_unwind);
        assert!(scope_for("crates/core/src/native.rs").catch_unwind);

        let data = scope_for("crates/data/src/io.rs");
        assert!(!data.panic_freedom && !data.float_eq && !data.param_validation);
        assert!(data.no_stdout);
        assert!(scope_for("crates/data/src/error.rs").error_hygiene);

        // Telemetry is a library crate: silent. The CLI and xtask print
        // by design.
        assert!(scope_for("crates/telemetry/src/trace.rs").no_stdout);
        assert!(!scope_for("crates/cli/src/commands.rs").no_stdout);
        assert!(!scope_for("crates/xtask/src/main.rs").no_stdout);

        // Concurrency-correctness rules: determinism and atomic ordering
        // cover the result-affecting crates; lock discipline covers the
        // crate holding the executor's mutexes.
        assert!(core.determinism && core.atomic_ordering && !core.lock_discipline);
        let exec = scope_for("crates/dataflow/src/executor.rs");
        assert!(exec.determinism && exec.lock_discipline && exec.atomic_ordering);
        assert!(scope_for("crates/spatial/src/grid.rs").determinism);
        assert!(!data.determinism && !data.lock_discipline && !data.atomic_ordering);

        // The process-worker plumbing (wire framing and pool) lives in
        // dataflow, so the full concurrency regime applies — notably
        // XL008 lock discipline over the pool's shared dispatch state —
        // and both modules are inside the panic-freedom/no-stdout walls.
        let ipc = scope_for("crates/dataflow/src/ipc.rs");
        assert!(ipc.lock_discipline && ipc.determinism && ipc.atomic_ordering);
        assert!(ipc.panic_freedom && ipc.no_stdout && ipc.catch_unwind);
        let pool = scope_for("crates/dataflow/src/worker.rs");
        assert!(pool.lock_discipline && pool.panic_freedom && pool.no_stdout);

        // Telemetry-merge paths (cross-process tracing): the parent-side
        // span/counter merge sits in the worker pool and the stage
        // metrics module, so hash-order iteration (XL007), raw locking
        // (XL008) and relaxed atomics (XL009) are all in scope there.
        assert!(pool.determinism && pool.atomic_ordering);
        let stage_metrics = scope_for("crates/dataflow/src/metrics.rs");
        assert!(stage_metrics.determinism && stage_metrics.lock_discipline);
        assert!(stage_metrics.atomic_ordering && stage_metrics.no_stdout);
        // The counter taxonomy itself lives in telemetry, which is
        // print-free but not result-affecting (merged counters feed
        // reports, not labels).
        let counters = scope_for("crates/telemetry/src/counters.rs");
        assert!(counters.no_stdout && !counters.determinism && !counters.lock_discipline);

        // Kernel-lane confinement: only the two audited spatial modules
        // (and xtask, which names the tokens) escape XL010.
        assert!(!scope_for("crates/spatial/src/distance.rs").kernel_lane);
        assert!(!scope_for("crates/spatial/src/cell_major.rs").kernel_lane);
        assert!(!scope_for("crates/xtask/src/rules.rs").kernel_lane);
        assert!(scope_for("crates/spatial/src/grid.rs").kernel_lane);
        assert!(core.kernel_lane);
        assert!(scope_for("crates/data/src/io.rs").kernel_lane);
    }

    #[test]
    fn malformed_directive_reported_everywhere() {
        let d = lint_source(
            "crates/data/src/x.rs",
            "// xtask-lint: allow(XL001)\nfn f() {}\n",
            scope_for("crates/data/src/x.rs"),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d.first().map(|d| d.rule), Some("XL000"));
    }
}
