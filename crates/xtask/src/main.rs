//! CLI for the workspace lint suite: `cargo xtask lint [--json] [--root DIR]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: cargo xtask lint [--json] [--root DIR]\n\n\
     Runs the DBSCOUT custom lint suite (rules XL000-XL005) over every\n\
     crates/*/src/**/*.rs file. Exits non-zero when findings exist.\n\n\
     options:\n\
     \x20 --json      emit findings as one JSON document\n\
     \x20 --root DIR  workspace root to lint (default: CARGO_WORKSPACE_DIR\n\
     \x20             or the current directory)"
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if cmd != "lint" {
        eprintln!("error: unknown command {cmd:?}\n\n{}", usage());
        return ExitCode::FAILURE;
    }

    let mut json = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    // Under the `cargo xtask` alias the process runs from wherever the
    // user invoked cargo; resolve the workspace root from the manifest
    // location cargo gives us.
    let root = root.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|m| PathBuf::from(m).join("../.."))
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let findings = match xtask::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", xtask::render_json_report(&findings));
    } else {
        for d in &findings {
            print!("{}", d.render_human());
        }
        if findings.is_empty() {
            println!("xtask lint: clean (rules XL000-XL005)");
        } else {
            println!("xtask lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
