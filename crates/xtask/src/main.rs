//! CLI for workspace automation: the custom lint suite and the run-report
//! schema checker.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: cargo xtask <command>\n\n\
     commands:\n\
     \x20 lint [--json] [--root DIR]   run the DBSCOUT custom lint suite\n\
     \x20                              (rules XL000-XL010) over every\n\
     \x20                              crates/*/src/**/*.rs file; exits\n\
     \x20                              non-zero when findings exist\n\
     \x20 lint --explain XLNNN         print a rule's rationale and waiver\n\
     \x20                              syntax\n\
     \x20 check-report <file>          validate a `dbscout detect\n\
     \x20                              --report-json` document against the\n\
     \x20                              run-report schema\n\
     \x20 check-trace <file>           validate a `dbscout detect\n\
     \x20                              --trace-out` Chrome Trace: spans and\n\
     \x20                              counter samples only, timestamps\n\
     \x20                              monotone per lane, counter names in\n\
     \x20                              the kernel taxonomy\n\
     \x20 check-layout [--root DIR]    assert the cell-major layout is the\n\
     \x20                              native engine's `#[default]` (release\n\
     \x20                              builds must not silently fall back to\n\
     \x20                              the hashed path)\n\n\
     lint options:\n\
     \x20 --json      emit findings as one JSON document\n\
     \x20 --root DIR  workspace root to lint (default: CARGO_WORKSPACE_DIR\n\
     \x20             or the current directory)"
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        "lint" => lint(args),
        "check-report" => check_report(args),
        "check-trace" => check_trace(args),
        "check-layout" => check_layout(args),
        _ => {
            eprintln!("error: unknown command {cmd:?}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn check_report(mut args: impl Iterator<Item = String>) -> ExitCode {
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!(
            "error: check-report takes exactly one file argument\n\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errors = xtask::report_check::check_report(&source);
    if errors.is_empty() {
        println!("xtask check-report: {path} conforms to run-report schema");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        eprintln!("xtask check-report: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn check_trace(mut args: impl Iterator<Item = String>) -> ExitCode {
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!(
            "error: check-trace takes exactly one file argument\n\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errors = xtask::trace_check::check_trace(&source);
    if errors.is_empty() {
        println!("xtask check-trace: {path} is a well-formed Chrome Trace");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        eprintln!("xtask check-trace: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

// Under the `cargo xtask` alias the process runs from wherever the
// user invoked cargo; resolve the workspace root from the manifest
// location cargo gives us.
fn workspace_root() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn check_layout(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let native = root.join("crates/core/src/native.rs");
    let source = match std::fs::read_to_string(&native) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to read {}: {e}", native.display());
            return ExitCode::FAILURE;
        }
    };
    let errors = xtask::layout_check::check_layout_source(&source);
    if errors.is_empty() {
        println!("xtask check-layout: ExecutionLayout defaults to CellMajor");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{}: {e}", native.display());
        }
        eprintln!("xtask check-layout: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn lint(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("error: --explain needs a rule id (e.g. XL007)");
                    return ExitCode::FAILURE;
                };
                return match xtask::diag::explain(&rule) {
                    Some(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "error: unknown rule {rule:?}; shipped rules: {}",
                            xtask::diag::ALL_RULES.join(", ")
                        );
                        ExitCode::FAILURE
                    }
                };
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let root = root.unwrap_or_else(workspace_root);

    let findings = match xtask::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", xtask::render_json_report(&findings));
    } else {
        for d in &findings {
            print!("{}", d.render_human());
        }
        if findings.is_empty() {
            println!("xtask lint: clean (rules XL000-XL010)");
        } else {
            println!("xtask lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
