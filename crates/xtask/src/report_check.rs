//! `cargo xtask check-report` — schema validation for `dbscout detect
//! --report-json` documents.
//!
//! The checker is structural: it parses the document with the same
//! hand-rolled JSON parser the report writer round-trips through, then
//! verifies the schema version and that every section carries exactly
//! the fields the writer emits, with the right primitive types. CI runs
//! it against a fresh report so a writer/schema drift fails the build
//! rather than silently shipping malformed artifacts.

use dbscout_telemetry::json::{parse, Value};
use dbscout_telemetry::REPORT_SCHEMA_VERSION;

/// Keys every `stages[]` entry must carry (besides the string `label`).
/// The trailing four are the kernel work counters added in schema v4.
const STAGE_COUNTERS: [&str; 20] = [
    "tasks",
    "records_in",
    "records_out",
    "shuffle_records",
    "shuffle_bytes",
    "join_output_records",
    "task_retries",
    "speculative_launches",
    "speculative_wins",
    "injected_faults",
    "worker_kills",
    "worker_respawns",
    "task_reassignments",
    "task_duration_p50_us",
    "task_duration_p95_us",
    "task_duration_max_us",
    "cells_visited",
    "bbox_prunes",
    "early_exit_hits",
    "distance_evals",
];

/// Keys the `totals` object must carry. Schema v4 adds the four kernel
/// work counters (backend- and thread-invariant) plus the aggregate
/// child CPU time.
const TOTALS_COUNTERS: [&str; 24] = [
    "stages",
    "tasks",
    "records_in",
    "records_out",
    "shuffle_records",
    "shuffle_bytes",
    "broadcasts",
    "join_output_records",
    "task_retries",
    "speculative_launches",
    "speculative_wins",
    "injected_faults",
    "worker_kills",
    "worker_respawns",
    "task_reassignments",
    "outliers",
    "peak_rss_bytes",
    "child_peak_rss_bytes",
    "child_cpu_time_us",
    "wall_clock_us",
    "cells_visited",
    "bbox_prunes",
    "early_exit_hits",
    "distance_evals",
];

/// Keys the optional `process` section must carry (process backend
/// runs only; in-process reports omit the section entirely).
const PROCESS_COUNTERS: [&str; 8] = [
    "workers",
    "workers_spawned",
    "worker_kills",
    "worker_respawns",
    "task_reassignments",
    "poisoned_tasks",
    "child_peak_rss_bytes",
    "child_cpu_time_us",
];

/// Keys every `process.per_worker[]` entry must carry.
const WORKER_COUNTERS: [&str; 7] = [
    "slot",
    "spawns",
    "kills",
    "respawns",
    "tasks_completed",
    "peak_rss_bytes",
    "cpu_time_us",
];

/// Keys the optional `serve` section must carry (schema v6; `dbscout
/// serve` sessions only — batch reports omit the section entirely).
const SERVE_COUNTERS: [&str; 9] = [
    "queries",
    "probes",
    "inserts",
    "removes",
    "outlier_queries",
    "stats_queries",
    "errors",
    "rebuilds",
    "compactions",
];

fn expect_u64(errors: &mut Vec<String>, obj: &Value, section: &str, key: &str) {
    match obj.get(key) {
        Some(v) if v.as_u64().is_some() => {}
        Some(_) => errors.push(format!("{section}.{key}: not an unsigned integer")),
        None => errors.push(format!("{section}.{key}: missing")),
    }
}

fn expect_str(errors: &mut Vec<String>, obj: &Value, section: &str, key: &str) {
    match obj.get(key) {
        Some(v) if v.as_str().is_some() => {}
        Some(_) => errors.push(format!("{section}.{key}: not a string")),
        None => errors.push(format!("{section}.{key}: missing")),
    }
}

/// Validates one rendered run report. Returns the list of schema
/// violations; an empty list means the document conforms.
pub fn check_report(source: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let doc = match parse(source) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    if doc.as_object().is_none() {
        return vec!["top level: not an object".to_string()];
    }

    match doc.get("schema_version").and_then(Value::as_u64) {
        Some(v) if v == REPORT_SCHEMA_VERSION => {}
        Some(v) => errors.push(format!(
            "schema_version: got {v}, this checker understands {REPORT_SCHEMA_VERSION}"
        )),
        None => errors.push("schema_version: missing or not an unsigned integer".to_string()),
    }

    match doc.get("dataset") {
        Some(dataset) if dataset.as_object().is_some() => {
            expect_str(&mut errors, dataset, "dataset", "source");
            expect_u64(&mut errors, dataset, "dataset", "points");
            expect_u64(&mut errors, dataset, "dataset", "dimensions");
        }
        _ => errors.push("dataset: missing or not an object".to_string()),
    }

    match doc.get("params") {
        Some(params) if params.as_object().is_some() => {
            expect_str(&mut errors, params, "params", "engine");
            match params.get("eps").and_then(Value::as_f64) {
                Some(eps) if eps.is_finite() && eps > 0.0 => {}
                Some(_) => errors.push("params.eps: not finite-positive".to_string()),
                None => errors.push("params.eps: missing or not a number".to_string()),
            }
            expect_u64(&mut errors, params, "params", "min_pts");
            expect_u64(&mut errors, params, "params", "partitions");
            expect_u64(&mut errors, params, "params", "workers");
            // Schema v5: the resolved execution echo.
            expect_str(&mut errors, params, "params", "kernel");
            expect_u64(&mut errors, params, "params", "threads");
            // Either a seed or the literal string "none".
            match params.get("chaos_seed") {
                Some(v) if v.as_u64().is_some() || v.as_str() == Some("none") => {}
                Some(_) => {
                    errors.push("params.chaos_seed: neither a seed nor \"none\"".to_string())
                }
                None => errors.push("params.chaos_seed: missing".to_string()),
            }
        }
        _ => errors.push("params: missing or not an object".to_string()),
    }

    match doc.get("phases").and_then(Value::as_array) {
        Some(phases) => {
            if phases.is_empty() {
                errors.push("phases: empty (a run always has phases)".to_string());
            }
            for (i, phase) in phases.iter().enumerate() {
                let section = format!("phases[{i}]");
                expect_str(&mut errors, phase, &section, "name");
                expect_u64(&mut errors, phase, &section, "wall_clock_us");
            }
        }
        None => errors.push("phases: missing or not an array".to_string()),
    }

    match doc.get("stages").and_then(Value::as_array) {
        Some(stages) => {
            for (i, stage) in stages.iter().enumerate() {
                let section = format!("stages[{i}]");
                expect_str(&mut errors, stage, &section, "label");
                for key in STAGE_COUNTERS {
                    expect_u64(&mut errors, stage, &section, key);
                }
            }
        }
        None => errors.push("stages: missing or not an array".to_string()),
    }

    // The process section is optional (present only for `--backend
    // process` runs) but fully validated when present.
    if let Some(process) = doc.get("process") {
        if process.as_object().is_some() {
            for key in PROCESS_COUNTERS {
                expect_u64(&mut errors, process, "process", key);
            }
            match process.get("per_worker").and_then(Value::as_array) {
                Some(per_worker) => {
                    for (i, worker) in per_worker.iter().enumerate() {
                        let section = format!("process.per_worker[{i}]");
                        for key in WORKER_COUNTERS {
                            expect_u64(&mut errors, worker, &section, key);
                        }
                    }
                    // The array must cover the configured pool width.
                    if let Some(workers) = process.get("workers").and_then(Value::as_u64) {
                        if per_worker.len() as u64 != workers {
                            errors.push(format!(
                                "process.per_worker: {} entries for {workers} workers",
                                per_worker.len()
                            ));
                        }
                    }
                }
                None => errors.push("process.per_worker: missing or not an array".to_string()),
            }
        } else {
            errors.push("process: not an object".to_string());
        }
    }

    // The serve section is optional (present only for `dbscout serve`
    // sessions) but fully validated when present. Internal consistency:
    // `queries` counts every answered request, so it can never be
    // smaller than the sum of the per-op counts it breaks down into.
    if let Some(serve) = doc.get("serve") {
        if serve.as_object().is_some() {
            for key in SERVE_COUNTERS {
                expect_u64(&mut errors, serve, "serve", key);
            }
            let op_sum: u64 = [
                "probes",
                "inserts",
                "removes",
                "outlier_queries",
                "stats_queries",
                "errors",
            ]
            .iter()
            .filter_map(|k| serve.get(k).and_then(Value::as_u64))
            .sum();
            if let Some(queries) = serve.get("queries").and_then(Value::as_u64) {
                if queries < op_sum {
                    errors.push(format!(
                        "serve.queries: {queries} but the per-op counts sum to {op_sum}"
                    ));
                }
            }
        } else {
            errors.push("serve: not an object".to_string());
        }
    }

    match doc.get("totals") {
        Some(totals) if totals.as_object().is_some() => {
            for key in TOTALS_COUNTERS {
                expect_u64(&mut errors, totals, "totals", key);
            }
            // Internal consistency: totals.stages counts the stages array.
            if let (Some(n), Some(stages)) = (
                totals.get("stages").and_then(Value::as_u64),
                doc.get("stages").and_then(Value::as_array),
            ) {
                if n != stages.len() as u64 {
                    errors.push(format!(
                        "totals.stages: {n} but the stages array has {} entries",
                        stages.len()
                    ));
                }
            }
        }
        _ => errors.push("totals: missing or not an object".to_string()),
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscout_telemetry::{
        DatasetEcho, ParamsEcho, PhaseReport, RunReport, StageReport, TotalsReport,
    };

    fn valid_report() -> RunReport {
        RunReport {
            dataset: DatasetEcho {
                source: "blobs.csv".to_owned(),
                points: 100,
                dimensions: 2,
            },
            params: ParamsEcho {
                engine: "distributed".to_owned(),
                eps: 0.5,
                min_pts: 4,
                partitions: 8,
                workers: 4,
                kernel: "unrolled".to_owned(),
                threads: 4,
                chaos_seed: None,
            },
            phases: vec![PhaseReport {
                name: "grid partitioning".to_owned(),
                wall_clock_us: 10,
            }],
            stages: vec![StageReport {
                label: "grid partitioning:map_partitions".to_owned(),
                tasks: 8,
                ..StageReport::default()
            }],
            process: None,
            serve: None,
            totals: TotalsReport {
                stages: 1,
                tasks: 8,
                ..TotalsReport::default()
            },
        }
    }

    #[test]
    fn writer_output_conforms() {
        let errors = check_report(&valid_report().to_json());
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn garbage_and_non_objects_are_rejected() {
        assert!(!check_report("not json").is_empty());
        assert!(!check_report("[1, 2]").is_empty());
    }

    #[test]
    fn missing_sections_are_each_reported() {
        let errors = check_report(&format!("{{\"schema_version\": {REPORT_SCHEMA_VERSION}}}"));
        for section in ["dataset", "params", "phases", "stages", "totals"] {
            assert!(
                errors.iter().any(|e| e.starts_with(section)),
                "no error for {section}: {errors:?}"
            );
        }
    }

    #[test]
    fn process_section_is_validated_when_present() {
        use dbscout_telemetry::{ProcessReport, WorkerReport};

        let mut report = valid_report();
        report.process = Some(ProcessReport {
            workers: 2,
            workers_spawned: 3,
            worker_kills: 1,
            worker_respawns: 1,
            task_reassignments: 1,
            poisoned_tasks: 0,
            child_peak_rss_bytes: 4096,
            child_cpu_time_us: 1500,
            per_worker: (0..2)
                .map(|slot| WorkerReport {
                    slot,
                    spawns: 1 + slot,
                    kills: slot,
                    respawns: slot,
                    tasks_completed: 4,
                    peak_rss_bytes: 2048,
                    cpu_time_us: 750,
                })
                .collect(),
        });
        let errors = check_report(&report.to_json());
        assert!(errors.is_empty(), "{errors:?}");

        // A per-worker array narrower than the pool is a violation...
        if let Some(p) = &mut report.process {
            p.per_worker.pop();
        }
        let errors = check_report(&report.to_json());
        assert!(
            errors.iter().any(|e| e.contains("process.per_worker")),
            "{errors:?}"
        );
        // ...and a per-worker entry missing a counter is caught.
        if let Some(p) = &mut report.process {
            p.per_worker = vec![WorkerReport::default()];
            p.workers = 1;
        }
        let json = report
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"tasks_completed\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!check_report(&json).is_empty());
    }

    #[test]
    fn serve_section_is_validated_when_present() {
        use dbscout_telemetry::ServeReport;

        let mut report = valid_report();
        report.serve = Some(ServeReport {
            queries: 13,
            probes: 5,
            inserts: 3,
            removes: 2,
            outlier_queries: 1,
            stats_queries: 1,
            errors: 0,
            rebuilds: 4,
            compactions: 1,
        });
        let errors = check_report(&report.to_json());
        assert!(errors.is_empty(), "{errors:?}");

        // A query total smaller than its per-op breakdown is a violation.
        if let Some(s) = &mut report.serve {
            s.queries = 3;
        }
        let errors = check_report(&report.to_json());
        assert!(
            errors.iter().any(|e| e.contains("serve.queries")),
            "{errors:?}"
        );

        // A serve entry missing a counter is caught.
        if let Some(s) = &mut report.serve {
            s.queries = 13;
        }
        let json = report
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"compactions\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!check_report(&json).is_empty());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let json = valid_report().to_json().replacen(
            &format!("\"schema_version\": {REPORT_SCHEMA_VERSION}"),
            "\"schema_version\": 99",
            1,
        );
        let errors = check_report(&json);
        assert!(
            errors.iter().any(|e| e.contains("schema_version")),
            "{errors:?}"
        );
    }

    #[test]
    fn totals_stage_count_mismatch_is_rejected() {
        let mut report = valid_report();
        report.totals.stages = 7;
        let errors = check_report(&report.to_json());
        assert!(
            errors.iter().any(|e| e.contains("totals.stages")),
            "{errors:?}"
        );
    }

    #[test]
    fn stage_missing_counter_is_rejected() {
        let json = valid_report()
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"speculative_wins\""))
            .collect::<Vec<_>>()
            .join("\n");
        // Removing a line leaves valid JSON here because the next line
        // continues the object; if it ever doesn't, the parse error is
        // still a non-empty finding.
        let errors = check_report(&json);
        assert!(!errors.is_empty());
    }
}
