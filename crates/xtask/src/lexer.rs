//! A comment/string-aware cleaning pass over Rust source.
//!
//! `syn` is unavailable offline, so the lint rules work on a *cleaned*
//! copy of each file instead of an AST: comments, string literals and
//! char literals are blanked to spaces (newlines preserved), leaving a
//! byte-for-byte aligned text where token scanning cannot be fooled by
//! `"panic!"` inside a string or `.unwrap()` inside a doc comment.
//!
//! The pass also extracts two escape-hatch directives, each suppressing
//! findings on its own line and the following line, and each requiring a
//! non-empty `-- reason` (a hatch without one is itself reported as
//! `XL000`):
//!
//! * `// xtask-lint: allow(XL001) -- reason` — suppress specific rules;
//! * `// xlint: ordered -- reason` — assert a hash-ordered iteration
//!   site is order-insensitive (consumed by the `XL007` determinism
//!   rule).

/// One parsed escape-hatch directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule ids the hatch suppresses (e.g. `["XL001"]`).
    pub rules: Vec<String>,
}

/// Result of the cleaning pass.
pub struct Cleaned {
    /// Same byte length as the input; comments/strings blanked.
    pub text: Vec<u8>,
    /// Escape hatches found in comments.
    pub allows: Vec<Allow>,
    /// 1-based lines carrying an ordered-iteration determinism waiver.
    pub ordered: Vec<usize>,
    /// 1-based lines holding a malformed lint directive.
    pub malformed: Vec<usize>,
}

impl Cleaned {
    /// True when `rule` is suppressed at 1-based `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }

    /// True when an ordered-iteration waiver covers 1-based `line`.
    pub fn ordered_at(&self, line: usize) -> bool {
        self.ordered.iter().any(|&l| l == line || l + 1 == line)
    }

    /// 1-based line number of byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        line_of(&self.text, pos)
    }

    /// 1-based column of byte offset `pos`.
    pub fn col_of(&self, pos: usize) -> usize {
        let upto = self.text.get(..pos).unwrap_or(&self.text);
        match upto.iter().rposition(|&b| b == b'\n') {
            Some(nl) => pos - nl,
            None => pos + 1,
        }
    }
}

/// 1-based line number of byte offset `pos` in `text`.
pub fn line_of(text: &[u8], pos: usize) -> usize {
    let upto = text.get(..pos).unwrap_or(text);
    1 + upto.iter().filter(|&&b| b == b'\n').count()
}

fn at(b: &[u8], i: usize) -> u8 {
    b.get(i).copied().unwrap_or(0)
}

/// Blanks comments and literals, collecting escape hatches on the way.
pub fn clean(source: &str) -> Cleaned {
    let src = source.as_bytes();
    let mut out = src.to_vec();
    let mut allows = Vec::new();
    let mut ordered = Vec::new();
    let mut malformed = Vec::new();
    let mut i = 0usize;

    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for j in from..to {
            if let Some(b) = out.get_mut(j) {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    };

    while i < src.len() {
        let c = at(src, i);
        // Line comment.
        if c == b'/' && at(src, i + 1) == b'/' {
            let end = src
                .iter()
                .skip(i)
                .position(|&b| b == b'\n')
                .map_or(src.len(), |p| i + p);
            if let Some(text) = source.get(i..end) {
                match parse_directive(text) {
                    DirectiveParse::None => match parse_ordered(text) {
                        Some(true) => ordered.push(line_of(src, i)),
                        Some(false) => malformed.push(line_of(src, i)),
                        None => {}
                    },
                    DirectiveParse::Ok(rules) => {
                        allows.push(Allow {
                            line: line_of(src, i),
                            rules,
                        });
                    }
                    DirectiveParse::Malformed => malformed.push(line_of(src, i)),
                }
            }
            blank(&mut out, i, end);
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && at(src, i + 1) == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < src.len() && depth > 0 {
                if at(src, i) == b'/' && at(src, i + 1) == b'*' {
                    depth += 1;
                    i += 2;
                } else if at(src, i) == b'*' && at(src, i + 1) == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, start, i);
            continue;
        }
        // Raw strings: r"...", r#"..."#, br"...", br#"..."#.
        if c == b'r' || (c == b'b' && at(src, i + 1) == b'r') {
            let mut j = i + if c == b'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while at(src, j) == b'#' {
                hashes += 1;
                j += 1;
            }
            if at(src, j) == b'"' && !is_ident_byte(at(src, i.wrapping_sub(1))) {
                // Scan for closing quote followed by `hashes` hashes.
                let mut k = j + 1;
                'raw: while k < src.len() {
                    if at(src, k) == b'"' {
                        let mut h = 0usize;
                        while h < hashes && at(src, k + 1 + h) == b'#' {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                blank(&mut out, i, k);
                i = k;
                continue;
            }
        }
        // Plain and byte strings.
        if c == b'"'
            || (c == b'b' && at(src, i + 1) == b'"' && !is_ident_byte(at(src, i.wrapping_sub(1))))
        {
            let start = i;
            i += if c == b'b' { 2 } else { 1 };
            while i < src.len() {
                match at(src, i) {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            blank(&mut out, start, i);
            continue;
        }
        // Byte-char literal: b'[' / b'\n'. The char branch below cannot
        // catch these — its `!is_ident_byte(prev)` guard sees the `b` —
        // and an unblanked `[` would fake a slice-indexing finding.
        if c == b'b' && at(src, i + 1) == b'\'' && !is_ident_byte(at(src, i.wrapping_sub(1))) {
            let start = i;
            i += 2; // past `b'`
            if at(src, i) == b'\\' {
                i += 2;
                while i < src.len() && at(src, i) != b'\'' {
                    i += 1;
                }
                i += 1;
                blank(&mut out, start, i);
                continue;
            }
            if at(src, i + 1) == b'\'' {
                i += 2;
                blank(&mut out, start, i);
                continue;
            }
            // Not a byte char after all; re-scan from the quote.
            i = start + 1;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' && !is_ident_byte(at(src, i.wrapping_sub(1))) {
            if at(src, i + 1) == b'\\' {
                // Escaped char literal: '\n', '\u{...}', '\\', ...
                let start = i;
                i += 2;
                while i < src.len() && at(src, i) != b'\'' {
                    i += 1;
                }
                i += 1;
                blank(&mut out, start, i);
                continue;
            }
            // 'x' (any single char, possibly multi-byte).
            let ch_len = source
                .get(i + 1..)
                .and_then(|s| s.chars().next())
                .map_or(1, char::len_utf8);
            if at(src, i + 1 + ch_len) == b'\'' {
                blank(&mut out, i, i + 2 + ch_len);
                i += 2 + ch_len;
                continue;
            }
            // Lifetime: leave as-is (harmless to the rules).
        }
        i += 1;
    }

    Cleaned {
        text: out,
        allows,
        ordered,
        malformed,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

enum DirectiveParse {
    None,
    Ok(Vec<String>),
    Malformed,
}

/// Parses `xtask-lint: allow(XL001, XL002) -- reason` out of one `//`
/// comment. The reason after `--` is mandatory and must be non-empty.
fn parse_directive(comment: &str) -> DirectiveParse {
    let Some(pos) = comment.find("xtask-lint:") else {
        return DirectiveParse::None;
    };
    let rest = comment
        .get(pos + "xtask-lint:".len()..)
        .unwrap_or("")
        .trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return DirectiveParse::Malformed;
    };
    let Some(close) = rest.find(')') else {
        return DirectiveParse::Malformed;
    };
    let (inside, after) = rest.split_at(close);
    let rules: Vec<String> = inside
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty()
        || !rules
            .iter()
            .all(|r| crate::diag::ALL_RULES.contains(&r.as_str()))
    {
        return DirectiveParse::Malformed;
    }
    // after = ") -- reason"
    let after = after.get(1..).unwrap_or("").trim_start();
    let Some(reason) = after.strip_prefix("--") else {
        return DirectiveParse::Malformed;
    };
    if reason.trim().is_empty() {
        return DirectiveParse::Malformed;
    }
    DirectiveParse::Ok(rules)
}

/// Parses `xlint: ordered -- reason` out of one `//` comment. Returns
/// `None` when the comment is not an `xlint` directive, `Some(true)` for
/// a well-formed waiver and `Some(false)` for a malformed one (unknown
/// verb or missing reason).
fn parse_ordered(comment: &str) -> Option<bool> {
    let pos = comment.find("xlint:")?;
    let rest = comment
        .get(pos + "xlint:".len()..)
        .unwrap_or("")
        .trim_start();
    let Some(rest) = rest.strip_prefix("ordered") else {
        return Some(false);
    };
    let Some(reason) = rest.trim_start().strip_prefix("--") else {
        return Some(false);
    };
    Some(!reason.trim().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cleaned_str(src: &str) -> String {
        String::from_utf8(clean(src).text).unwrap_or_default()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"panic!\"; // .unwrap()\nlet b = 1;";
        let got = cleaned_str(src);
        assert!(!got.contains("panic"));
        assert!(!got.contains("unwrap"));
        assert!(got.contains("let b = 1;"));
        assert_eq!(got.len(), src.len());
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"x.unwrap()\"#; let c = '['; let l: &'static str = \"\";";
        let got = cleaned_str(src);
        assert!(!got.contains("unwrap"));
        assert!(!got.contains('['));
        assert!(got.contains("'static"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner .expect( */ still */ let x = 2;";
        let got = cleaned_str(src);
        assert!(!got.contains("expect"));
        assert!(got.contains("let x = 2;"));
    }

    #[test]
    fn newlines_survive_blanking() {
        let src = "/* a\nb\nc */ fn f() {}\n\"s\ntring\"";
        let got = cleaned_str(src);
        assert_eq!(got.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn allow_directive_parses() {
        let c = clean("x; // xtask-lint: allow(XL001) -- indexing proven in bounds\ny;");
        assert_eq!(
            c.allows,
            vec![Allow {
                line: 1,
                rules: vec!["XL001".into()]
            }]
        );
        assert!(c.allowed("XL001", 1));
        assert!(c.allowed("XL001", 2));
        assert!(!c.allowed("XL001", 3));
        assert!(!c.allowed("XL002", 1));
        assert!(c.malformed.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        for bad in [
            "// xtask-lint: allow(XL001)",
            "// xtask-lint: allow(XL001) --",
            "// xtask-lint: allow(XL001) --   ",
            "// xtask-lint: allow()  -- why",
            "// xtask-lint: allow(BOGUS) -- why",
            "// xtask-lint: deny(XL001) -- why",
        ] {
            let c = clean(bad);
            assert_eq!(c.malformed, vec![1], "{bad}");
        }
    }

    #[test]
    fn multi_rule_allow() {
        let c = clean("// xtask-lint: allow(XL001, XL002) -- both fine here\nx;");
        assert!(c.allowed("XL001", 2));
        assert!(c.allowed("XL002", 2));
    }

    #[test]
    fn byte_char_literals_are_blanked() {
        // Regression: `b'['` used to be mistaken for a lifetime, leaving
        // the `[` visible to the slice-indexing scan.
        let src = "let open = b'['; let nl = b'\\n'; let q = b'\\''; let z = b'x';";
        let got = cleaned_str(src);
        assert!(!got.contains('['), "byte-char content leaked: {got}");
        assert!(!got.contains('x'), "byte-char content leaked: {got}");
        assert_eq!(got.len(), src.len());
    }

    #[test]
    fn raw_strings_with_hashes_and_newlines() {
        let src = "let s = r##\"a.unwrap() \"# still[0] \"##; let t = br#\"panic!\"#; done";
        let got = cleaned_str(src);
        assert!(!got.contains("unwrap"), "{got}");
        assert!(!got.contains("still"), "{got}");
        assert!(!got.contains("panic"), "{got}");
        assert!(got.contains("done"));

        let multi = "r#\"line1.expect(\nline2[1]\"#; tail";
        let got = cleaned_str(multi);
        assert!(!got.contains("expect"), "{got}");
        assert!(!got.contains('['), "{got}");
        assert!(got.contains("tail"));
        assert_eq!(got.matches('\n').count(), multi.matches('\n').count());
    }

    #[test]
    fn nested_block_comment_hides_string_openers() {
        // An unbalanced quote inside a nested comment must not derail the
        // scan past the comment's end.
        let src = "/* outer /* \" r#\" */ .unwrap() */ let ok = 1;";
        let got = cleaned_str(src);
        assert!(!got.contains("unwrap"), "{got}");
        assert!(got.contains("let ok = 1;"));
    }

    #[test]
    fn ordered_directive_parses() {
        let c = clean("for v in m.values() {} // xlint: ordered -- summed, order-free\nnext;");
        assert_eq!(c.ordered, vec![1]);
        assert!(c.ordered_at(1));
        assert!(c.ordered_at(2));
        assert!(!c.ordered_at(3));
        assert!(c.malformed.is_empty());

        // The waiver also covers the following line, like `allow`.
        let c = clean("// xlint: ordered -- counts only\nfor v in m.values() {}");
        assert!(c.ordered_at(2));
    }

    #[test]
    fn ordered_directive_without_reason_is_malformed() {
        for bad in [
            "// xlint: ordered",
            "// xlint: ordered --",
            "// xlint: ordered --   ",
            "// xlint: sorted -- wrong verb",
        ] {
            let c = clean(bad);
            assert_eq!(c.malformed, vec![1], "{bad}");
            assert!(c.ordered.is_empty(), "{bad}");
        }
    }

    #[test]
    fn directives_inside_strings_are_ignored() {
        let c = clean("let s = \"// xlint: ordered -- nope\";\n");
        assert!(c.ordered.is_empty());
        assert!(c.malformed.is_empty());
    }

    #[test]
    fn line_and_col_math() {
        let c = clean("ab\ncd\nef");
        assert_eq!(c.line_of(0), 1);
        assert_eq!(c.line_of(4), 2);
        assert_eq!(c.col_of(4), 2);
        assert_eq!(c.line_of(6), 3);
    }
}
