//! Lint diagnostics: the finding record plus rustc-style and JSON
//! rendering.

use std::fmt::Write as _;

/// Stable identifiers of the lint rules.
///
/// * `XL000` — malformed `xtask-lint` control comment
/// * `XL001` — panic-freedom (no `unwrap`/`expect`/`panic!`/`todo!`/
///   `unreachable!`/slice indexing in library code)
/// * `XL002` — float-comparison discipline (no `==`/`!=` on floats, no
///   raw distance-vs-threshold comparisons outside the distance helpers)
/// * `XL003` — parameter-validation coverage (public functions taking raw
///   `eps`/`min_pts` must reach a validation call)
/// * `XL004` — error-type hygiene (`Display` + `std::error::Error` +
///   `Send + Sync` assertion for every public error type)
pub const ALL_RULES: [&str; 5] = ["XL000", "XL001", "XL002", "XL003", "XL004"];

/// One lint finding, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`XL001`, ...).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    /// Renders the finding in the familiar rustc error layout.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.help.is_empty() {
            let _ = writeln!(out, "   = help: {}", self.help);
        }
        out
    }

    /// Renders the finding as a JSON object.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"help\":{}}}",
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.help),
        )
    }
}

/// Renders a full report: one JSON document with every finding, suitable
/// for machine consumption in CI.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::render_json).collect();
    format!(
        "{{\"findings\":[{}],\"count\":{}}}",
        items.join(","),
        diags.len()
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "XL001",
            file: "crates/core/src/native.rs".into(),
            line: 42,
            col: 7,
            message: "`.unwrap()` in library code".into(),
            help: "propagate with `?`".into(),
        }
    }

    #[test]
    fn human_rendering_has_location() {
        let r = sample().render_human();
        assert!(r.contains("error[XL001]"));
        assert!(r.contains("crates/core/src/native.rs:42:7"));
    }

    #[test]
    fn json_rendering_escapes() {
        let mut d = sample();
        d.message = "a \"quoted\" message".into();
        let j = d.render_json();
        assert!(j.contains("\\\"quoted\\\""));
        let report = render_json_report(&[d]);
        assert!(report.ends_with("\"count\":1}"));
    }
}
