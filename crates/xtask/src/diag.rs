//! Lint diagnostics: the finding record plus rustc-style and JSON
//! rendering.

use std::fmt::Write as _;

/// Stable identifiers of the lint rules.
///
/// * `XL000` — malformed `xtask-lint` control comment
/// * `XL001` — panic-freedom (no `unwrap`/`expect`/`panic!`/`todo!`/
///   `unreachable!`/slice indexing in library code)
/// * `XL002` — float-comparison discipline (no `==`/`!=` on floats, no
///   raw distance-vs-threshold comparisons outside the distance helpers)
/// * `XL003` — parameter-validation coverage (public functions taking raw
///   `eps`/`min_pts` must reach a validation call)
/// * `XL004` — error-type hygiene (`Display` + `std::error::Error` +
///   `Send + Sync` assertion for every public error type)
/// * `XL005` — `catch_unwind` confinement (the dataflow executor is the
///   only sanctioned panic boundary)
/// * `XL006` — stdout discipline (no `print!`/`println!`/`eprintln!` in
///   library crates)
/// * `XL007` — determinism (no iteration over hash-ordered maps/sets in
///   result-affecting paths; waived per site with an ordered directive)
/// * `XL008` — lock discipline (all executor locking goes through
///   `lock_unpoisoned`; no guard held across a task boundary)
/// * `XL009` — atomic-ordering discipline (no `Ordering::Relaxed` on
///   atomic loads/stores that gate cross-thread visibility)
/// * `XL010` — kernel-lane confinement (unrolled/SIMD distance loops and
///   architecture intrinsics only in `crates/spatial/src/distance.rs`
///   and `cell_major.rs`)
pub const ALL_RULES: [&str; 11] = [
    "XL000", "XL001", "XL002", "XL003", "XL004", "XL005", "XL006", "XL007", "XL008", "XL009",
    "XL010",
];

/// Rationale and waiver syntax for one rule, shown by
/// `cargo xtask lint --explain XLNNN`. Every rule in [`ALL_RULES`] has an
/// entry — a self-test enforces it.
pub fn explain(rule: &str) -> Option<&'static str> {
    let text = match rule {
        "XL000" => {
            "XL000 — malformed lint control comment\n\
             \n\
             A comment that looks like a lint directive but does not parse is\n\
             reported instead of being silently ignored: a typo in a waiver must\n\
             not re-enable a finding without anyone noticing.\n\
             \n\
             Valid forms:\n\
               // xtask-lint: allow(XL001[, XL002]) -- <non-empty reason>\n\
               // xlint: ordered -- <non-empty reason>\n\
             Both suppress findings on their own line and the line below."
        }
        "XL001" => {
            "XL001 — panic freedom\n\
             \n\
             Library crates on the detection path (core, spatial, dataflow) must\n\
             not panic: `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!` and\n\
             slice indexing are flagged. Panics abort whole detection runs and\n\
             poison executor state.\n\
             \n\
             Waive a proven-safe site with:\n\
               // xtask-lint: allow(XL001) -- <why the operation cannot fail>"
        }
        "XL002" => {
            "XL002 — float-comparison discipline\n\
             \n\
             `==`/`!=` on floats and raw distance-vs-threshold comparisons\n\
             outside the distance helpers are flagged. DBSCOUT's exactness\n\
             guarantee hinges on every eps-comparison going through one audited\n\
             predicate (squared distance vs squared eps).\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL002) -- <why this comparison is exact>"
        }
        "XL003" => {
            "XL003 — parameter-validation coverage\n\
             \n\
             Public core functions taking raw `eps`/`min_pts` must reach a\n\
             validation call before using them; NaN or non-positive eps must be\n\
             rejected at the API boundary, not deep in a kernel.\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL003) -- <where validation happens instead>"
        }
        "XL004" => {
            "XL004 — error-type hygiene\n\
             \n\
             Every public error type needs `Display`, `std::error::Error` and a\n\
             `Send + Sync` assertion so errors can cross thread boundaries in\n\
             the executor and compose with `?`.\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL004) -- <why the type is exempt>"
        }
        "XL005" => {
            "XL005 — catch_unwind confinement\n\
             \n\
             `std::panic::catch_unwind` is flagged everywhere except the\n\
             dataflow executor, the one sanctioned panic boundary. Scattered\n\
             recovery sites hide bugs and break the fault-injection story.\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL005) -- <why another boundary is needed>"
        }
        "XL006" => {
            "XL006 — stdout discipline\n\
             \n\
             `print!`/`println!`/`eprint!`/`eprintln!` are flagged in library\n\
             crates; human-facing output belongs to the CLI, telemetry goes\n\
             through the tracing layer. Stray prints corrupt `--json` output.\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL006) -- <why this print is sanctioned>"
        }
        "XL007" => {
            "XL007 — determinism (hash-ordered iteration)\n\
             \n\
             Iterating a `HashMap`/`HashSet`/`DetHashMap` yields entries in\n\
             hash-layout order. Where that order can reach results or shuffle\n\
             payloads it threatens the byte-identical-labels guarantee, so\n\
             iteration sites (`iter`, `keys`, `values`, `into_iter`, `drain`,\n\
             `retain`, `for .. in map`) over hash-typed bindings are flagged in\n\
             core/spatial/dataflow.\n\
             \n\
             Fix by draining through a sorted order (see\n\
             `dbscout_dataflow::shuffle::drain_by_key_hash`) or switching to an\n\
             ordered container. A site proven order-insensitive (pure counts,\n\
             sums, min/max, or immediately sorted) is waived per site with:\n\
               // xlint: ordered -- <why order cannot affect results>\n\
             The reason is mandatory; waivers are audited in review."
        }
        "XL008" => {
            "XL008 — lock discipline\n\
             \n\
             Inside the dataflow crate every `lock()`/`try_lock()` must go\n\
             through `executor::lock_unpoisoned`, which recovers the guard from\n\
             a poisoned mutex so one panicking task cannot wedge the stage.\n\
             A `lock_unpoisoned` guard bound to a local must also be dropped\n\
             before task-boundary calls (`spawn`, `scope`, `join`,\n\
             `catch_unwind`, `sleep`): holding a guard across them invites\n\
             deadlock and serializes the very work the executor parallelizes.\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL008) -- <why the guard is safe here>"
        }
        "XL009" => {
            "XL009 — atomic-ordering discipline\n\
             \n\
             `Ordering::Relaxed` on an atomic `load`/`store` is flagged in\n\
             core/spatial/dataflow: Relaxed gives no happens-before edge, so a\n\
             Relaxed flag or counter read can observe stale state across\n\
             threads. Use Acquire for loads and Release for stores that gate\n\
             cross-thread visibility (the executor's `settled` counter is the\n\
             model). Monotonic tallies only folded after a `thread::scope` join\n\
             may keep Relaxed read-modify-writes (`fetch_add` is not flagged).\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL009) -- <the happens-before argument>"
        }
        "XL010" => {
            "XL010 — kernel-lane confinement\n\
             \n\
             Explicit lane-unrolled loops and architecture intrinsics are\n\
             audited against the scalar reference in exactly two places:\n\
             `crates/spatial/src/distance.rs` (the lane kernels) and\n\
             `cell_major.rs` (the slot-order dispatch that keeps counters\n\
             kernel-invariant). Everywhere else, `std::arch`/`core::arch`\n\
             paths, `target_feature` gates, and functions named `*unrolled*`\n\
             or `*simd*` are flagged: a stray hand-vectorized loop bypasses\n\
             the scalar-equivalence suite and threatens the byte-identical\n\
             labels guarantee. Route through `KernelKind` dispatch instead.\n\
             \n\
             Waive with:\n\
               // xtask-lint: allow(XL010) -- <why this site is pinned>"
        }
        _ => return None,
    };
    Some(text)
}

/// One lint finding, anchored to a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`XL001`, ...).
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    /// Renders the finding in the familiar rustc error layout.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.help.is_empty() {
            let _ = writeln!(out, "   = help: {}", self.help);
        }
        out
    }

    /// Renders the finding as a JSON object.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"help\":{}}}",
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.help),
        )
    }
}

/// Renders a full report: one JSON document with every finding, suitable
/// for machine consumption in CI.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let rules: Vec<String> = ALL_RULES.iter().map(|r| json_str(r)).collect();
    let items: Vec<String> = diags.iter().map(Diagnostic::render_json).collect();
    format!(
        "{{\"rules\":[{}],\"findings\":[{}],\"count\":{}}}",
        rules.join(","),
        items.join(","),
        diags.len()
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "XL001",
            file: "crates/core/src/native.rs".into(),
            line: 42,
            col: 7,
            message: "`.unwrap()` in library code".into(),
            help: "propagate with `?`".into(),
        }
    }

    #[test]
    fn human_rendering_has_location() {
        let r = sample().render_human();
        assert!(r.contains("error[XL001]"));
        assert!(r.contains("crates/core/src/native.rs:42:7"));
    }

    #[test]
    fn json_rendering_escapes() {
        let mut d = sample();
        d.message = "a \"quoted\" message".into();
        let j = d.render_json();
        assert!(j.contains("\\\"quoted\\\""));
        let report = render_json_report(&[d]);
        assert!(report.ends_with("\"count\":1}"));
    }

    #[test]
    fn report_advertises_the_rule_set() {
        let report = render_json_report(&[]);
        assert!(report.starts_with("{\"rules\":["));
        for rule in ALL_RULES {
            assert!(report.contains(&format!("\"{rule}\"")), "{rule} missing");
        }
    }

    #[test]
    fn every_shipped_rule_has_an_explanation() {
        for rule in ALL_RULES {
            let text = explain(rule).unwrap_or_else(|| panic!("{rule} lacks an explanation"));
            assert!(
                text.starts_with(rule),
                "{rule} explanation must lead with the id"
            );
            assert!(
                text.contains("xtask-lint: allow") || text.contains("xlint: ordered"),
                "{rule} explanation must show the waiver syntax"
            );
        }
    }

    #[test]
    fn unknown_rule_has_no_explanation() {
        assert!(explain("XL999").is_none());
        assert!(explain("").is_none());
    }
}
