//! `cargo xtask check-trace` — structural validation for `dbscout detect
//! --trace-out` Chrome Trace documents.
//!
//! The trace writer emits a JSON array of Trace Event Format objects:
//! complete spans (`"ph": "X"`) and cumulative counter samples
//! (`"ph": "C"`). CI runs this checker against a fresh process-backend
//! trace so a writer regression (unsorted lanes, an undeclared counter
//! name, a span without a duration) fails the build instead of shipping
//! an artifact `chrome://tracing` silently misrenders.

use std::collections::HashMap;

use dbscout_telemetry::json::{parse, Value};
use dbscout_telemetry::KERNEL_COUNTER_NAMES;

fn expect_u64(errors: &mut Vec<String>, obj: &Value, section: &str, key: &str) -> Option<u64> {
    match obj.get(key).and_then(Value::as_u64) {
        Some(v) => Some(v),
        None => {
            errors.push(format!(
                "{section}.{key}: missing or not an unsigned integer"
            ));
            None
        }
    }
}

/// Validates one rendered Chrome Trace. Returns the list of violations;
/// an empty list means the document conforms.
pub fn check_trace(source: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let doc = match parse(source) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let Some(events) = doc.as_array() else {
        return vec!["top level: not an array".to_string()];
    };
    if events.is_empty() {
        errors.push("events: empty (a traced run always records spans)".to_string());
    }

    // Per-(pid, tid) lane high-water mark for complete-event timestamps:
    // the writer sorts globally by ts, so within any single lane the
    // spans must begin in non-decreasing order or the viewer's track
    // layout breaks.
    let mut lane_high_water: HashMap<(u64, u64), u64> = HashMap::new();

    for (i, event) in events.iter().enumerate() {
        let section = format!("events[{i}]");
        if event.as_object().is_none() {
            errors.push(format!("{section}: not an object"));
            continue;
        }
        let name = match event.get("name").and_then(Value::as_str) {
            Some(name) => name,
            None => {
                errors.push(format!("{section}.name: missing or not a string"));
                continue;
            }
        };
        let pid = expect_u64(&mut errors, event, &section, "pid");
        let ts = expect_u64(&mut errors, event, &section, "ts");
        match event.get("ph").and_then(Value::as_str) {
            Some("X") => {
                // Counter events are process-wide; only complete spans
                // carry a thread lane.
                let tid = expect_u64(&mut errors, event, &section, "tid");
                expect_u64(&mut errors, event, &section, "dur");
                if let (Some(pid), Some(tid), Some(ts)) = (pid, tid, ts) {
                    let high = lane_high_water.entry((pid, tid)).or_insert(0);
                    if ts < *high {
                        errors.push(format!(
                            "{section} ({name:?}): ts {ts} regresses below {high} \
                             in lane pid={pid} tid={tid}"
                        ));
                    }
                    *high = (*high).max(ts);
                }
            }
            Some("C") => {
                if !KERNEL_COUNTER_NAMES.contains(&name) {
                    errors.push(format!(
                        "{section}: counter {name:?} is not in the declared kernel \
                         counter taxonomy {KERNEL_COUNTER_NAMES:?}"
                    ));
                }
                match event.get("args").and_then(|a| a.get("value")) {
                    Some(v) if v.as_u64().is_some() => {}
                    _ => errors.push(format!(
                        "{section} ({name:?}): args.value missing or not an unsigned integer"
                    )),
                }
            }
            Some(other) => errors.push(format!(
                "{section} ({name:?}): phase {other:?} is neither \"X\" nor \"C\""
            )),
            None => errors.push(format!("{section} ({name:?}): ph missing or not a string")),
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    use dbscout_telemetry::{Recorder, Span, SpanKind, TraceCollector};

    fn real_trace() -> String {
        let c = TraceCollector::new();
        let t = Instant::now();
        c.record_span(Span::new(
            "core-point pass",
            SpanKind::Stage,
            t,
            Duration::from_millis(5),
        ));
        c.record_span(
            Span::new(
                "core-point pass: shard",
                SpanKind::Task,
                t + Duration::from_millis(1),
                Duration::from_millis(2),
            )
            .lane(1)
            .pid(4242),
        );
        c.record_counter_point("distance_evals", t + Duration::from_millis(5), 99);
        c.to_chrome_trace()
    }

    #[test]
    fn writer_output_conforms() {
        let errors = check_trace(&real_trace());
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn garbage_and_non_arrays_are_rejected() {
        assert!(!check_trace("not json").is_empty());
        assert!(!check_trace("{\"a\": 1}").is_empty());
        assert!(!check_trace("[]").is_empty());
    }

    #[test]
    fn unknown_phase_and_undeclared_counter_are_rejected() {
        let json = "[{\"name\": \"s\", \"ph\": \"B\", \"pid\": 1, \"tid\": 1, \"ts\": 0}]";
        let errors = check_trace(json);
        assert!(errors.iter().any(|e| e.contains("neither")), "{errors:?}");

        let json = "[{\"name\": \"bogus_counter\", \"ph\": \"C\", \"pid\": 1, \"tid\": 1, \
                     \"ts\": 0, \"args\": {\"value\": 3}}]";
        let errors = check_trace(json);
        assert!(errors.iter().any(|e| e.contains("taxonomy")), "{errors:?}");
    }

    #[test]
    fn counter_without_numeric_value_is_rejected() {
        let json = "[{\"name\": \"distance_evals\", \"ph\": \"C\", \"pid\": 1, \"tid\": 1, \
                     \"ts\": 0, \"args\": {\"value\": \"lots\"}}]";
        let errors = check_trace(json);
        assert!(
            errors.iter().any(|e| e.contains("args.value")),
            "{errors:?}"
        );
    }

    #[test]
    fn timestamp_regression_within_a_lane_is_rejected() {
        let json = "[\
            {\"name\": \"a\", \"ph\": \"X\", \"pid\": 7, \"tid\": 1, \"ts\": 10, \"dur\": 1},\
            {\"name\": \"b\", \"ph\": \"X\", \"pid\": 7, \"tid\": 1, \"ts\": 5, \"dur\": 1}]";
        let errors = check_trace(json);
        assert!(errors.iter().any(|e| e.contains("regresses")), "{errors:?}");
        // The same timestamps in different lanes are fine.
        let json = "[\
            {\"name\": \"a\", \"ph\": \"X\", \"pid\": 7, \"tid\": 1, \"ts\": 10, \"dur\": 1},\
            {\"name\": \"b\", \"ph\": \"X\", \"pid\": 8, \"tid\": 1, \"ts\": 5, \"dur\": 1}]";
        assert!(check_trace(json).is_empty());
    }

    #[test]
    fn span_without_duration_is_rejected() {
        let json = "[{\"name\": \"a\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": 0}]";
        let errors = check_trace(json);
        assert!(errors.iter().any(|e| e.contains("dur")), "{errors:?}");
    }
}
