//! Guard that the cell-major layout stays the engine default.
//!
//! Release builds must run the columnar, bbox-pruned path unless a
//! caller explicitly opts out; that promise lives in a single
//! `#[default]` attribute inside the `ExecutionLayout` enum in
//! `crates/core/src/native.rs`. A refactor that moves the attribute (or
//! renames the variant) would silently revert every default-constructed
//! detector to the hashed path, so `cargo xtask check-layout` pins it
//! at the source level, where review diffs can't miss it.

/// Checks that `source` (the text of `native.rs`) declares
/// `ExecutionLayout` with `#[default]` on the `CellMajor` variant.
/// Returns a list of human-readable violations; empty means compliant.
pub fn check_layout_source(source: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(body) = enum_body(source, "ExecutionLayout") else {
        errors.push("enum ExecutionLayout not found".to_string());
        return errors;
    };
    if !body.contains("CellMajor") {
        errors.push("ExecutionLayout has no CellMajor variant".to_string());
        return errors;
    }
    match default_variant(&body) {
        Some(v) if v == "CellMajor" => {}
        Some(v) => errors.push(format!(
            "ExecutionLayout defaults to {v}, expected CellMajor"
        )),
        None => errors.push("ExecutionLayout has no #[default] variant".to_string()),
    }
    errors
}

/// Extracts the `{ ... }` body of `pub enum <name>`, if present.
fn enum_body(source: &str, name: &str) -> Option<String> {
    let decl = format!("enum {name}");
    let start = source.find(&decl)?;
    let rest = source.get(start..)?;
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, ch) in rest.char_indices().skip(open) {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return rest.get(open + 1..i).map(str::to_string);
                }
            }
            _ => {}
        }
    }
    None
}

/// The identifier of the variant that directly follows `#[default]`.
fn default_variant(body: &str) -> Option<String> {
    let idx = body.find("#[default]")?;
    let after = body.get(idx + "#[default]".len()..)?;
    let ident: String = after
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_cell_major_default() {
        let src = "pub enum ExecutionLayout {\n    Hashed,\n    #[default]\n    CellMajor,\n}";
        assert!(check_layout_source(src).is_empty());
    }

    #[test]
    fn rejects_hashed_default() {
        let src = "pub enum ExecutionLayout {\n    #[default]\n    Hashed,\n    CellMajor,\n}";
        let errs = check_layout_source(src);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("defaults to Hashed"), "{errs:?}");
    }

    #[test]
    fn rejects_missing_default_attribute() {
        let src = "pub enum ExecutionLayout { Hashed, CellMajor }";
        assert!(check_layout_source(src)[0].contains("no #[default]"));
    }

    #[test]
    fn rejects_missing_enum_or_variant() {
        assert!(check_layout_source("fn main() {}")[0].contains("not found"));
        let src = "pub enum ExecutionLayout { #[default] Hashed }";
        assert!(check_layout_source(src)[0].contains("no CellMajor"));
    }

    #[test]
    fn the_real_native_rs_passes() {
        // Anchors the check to the actual engine source in-tree.
        let src = include_str!("../../core/src/native.rs");
        assert!(check_layout_source(src).is_empty());
    }
}
