//! The DBSCOUT lint rules, implemented as token scans over the
//! [`crate::lexer::Cleaned`] text (see module docs there for why this is
//! not AST-based).

use crate::diag::Diagnostic;
use crate::lexer::Cleaned;

/// Which rule families apply to the file being linted. Derived from the
/// file's path by [`crate::scope_for`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// XL001: panic-freedom (core, spatial, dataflow library code).
    pub panic_freedom: bool,
    /// XL002: `==`/`!=` on floats (same crates, minus `distance.rs`).
    pub float_eq: bool,
    /// XL002: raw `dist`/`sq_dist` threshold comparisons (core, dataflow).
    pub distance_predicate: bool,
    /// XL003: parameter-validation coverage (core).
    pub param_validation: bool,
    /// XL004: error-type hygiene (every `error.rs`).
    pub error_hygiene: bool,
    /// XL005: `catch_unwind` confinement (everywhere except the dataflow
    /// executor, where panic recovery is the task boundary).
    pub catch_unwind: bool,
    /// XL006: no `println!`/`eprintln!` in library crates — diagnostics
    /// go through the telemetry recorder or returned values, never
    /// straight to the process streams.
    pub no_stdout: bool,
    /// XL007: no hash-ordered iteration in result-affecting paths
    /// (core, spatial, dataflow library code).
    pub determinism: bool,
    /// XL008: all locking through `lock_unpoisoned`, no guard held
    /// across a task boundary (the dataflow crate).
    pub lock_discipline: bool,
    /// XL009: no `Ordering::Relaxed` on atomic loads/stores (core,
    /// spatial, dataflow library code).
    pub atomic_ordering: bool,
    /// XL010: kernel-lane confinement — unrolled/SIMD distance loops and
    /// architecture intrinsics live only in `crates/spatial/src/
    /// distance.rs` and `cell_major.rs`.
    pub kernel_lane: bool,
}

fn at(b: &[u8], i: usize) -> u8 {
    b.get(i).copied().unwrap_or(0)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn prev_non_ws(b: &[u8], i: usize) -> u8 {
    prev_non_ws_pos(b, i).0
}

/// The previous non-whitespace byte before `i` and its position.
fn prev_non_ws_pos(b: &[u8], mut i: usize) -> (u8, usize) {
    while i > 0 {
        i -= 1;
        let c = at(b, i);
        if !c.is_ascii_whitespace() {
            return (c, i);
        }
    }
    (0, 0)
}

/// The identifier run whose last byte is the previous non-whitespace
/// character before `i` (empty if that character is not an ident byte).
fn ident_ending_before(b: &[u8], mut i: usize) -> &[u8] {
    while i > 0 && at(b, i - 1).is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(at(b, i - 1)) {
        i -= 1;
    }
    b.get(i..end).unwrap_or_default()
}

fn next_non_ws(b: &[u8], mut i: usize) -> (u8, usize) {
    while i < b.len() {
        let c = at(b, i);
        if !c.is_ascii_whitespace() {
            return (c, i);
        }
        i += 1;
    }
    (0, b.len())
}

/// Byte offset just past the brace that matches the `{` at `open`.
fn matching_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match at(b, i) {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Spans of `#[cfg(test)]`-gated code: the attribute through the matching
/// close brace of the item it gates (or through the `;` for gated
/// declarations). Code inside is exempt from XL001–XL003.
pub fn test_spans(c: &Cleaned) -> Vec<(usize, usize)> {
    const NEEDLE: &[u8] = b"#[cfg(test)]";
    let b = &c.text;
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find(b, NEEDLE, from) {
        let mut i = pos + NEEDLE.len();
        // Walk to the gated item's opening brace, or a `;` ending it.
        while i < b.len() && at(b, i) != b'{' && at(b, i) != b';' {
            i += 1;
        }
        let end = if at(b, i) == b'{' {
            matching_brace(b, i)
        } else {
            i + 1
        };
        spans.push((pos, end));
        from = end.max(pos + 1);
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], pos: usize) -> bool {
    spans.iter().any(|&(a, z)| a <= pos && pos < z)
}

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let tail = haystack.get(from..)?;
    tail.windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

/// Identifiers in cleaned text as `(start, end)` byte spans. Runs that
/// start with a digit (numeric literals like `0xE001`) are consumed but
/// not reported.
fn idents(b: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = at(b, i);
        if is_ident_byte(c) {
            let start = i;
            while i < b.len() && is_ident_byte(at(b, i)) {
                i += 1;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                out.push((start, i));
            }
        } else {
            i += 1;
        }
    }
    out
}

fn emit(
    out: &mut Vec<Diagnostic>,
    c: &Cleaned,
    file: &str,
    rule: &'static str,
    pos: usize,
    message: String,
    help: &str,
) {
    let line = c.line_of(pos);
    if c.allowed(rule, line) {
        return;
    }
    out.push(Diagnostic {
        rule,
        file: file.to_string(),
        line,
        col: c.col_of(pos),
        message,
        help: help.to_string(),
    });
}

/// XL001 — panic-freedom: no `.unwrap()`, `.expect(...)`, `panic!`,
/// `todo!`, `unreachable!`, `unimplemented!` or slice indexing `x[i]` in
/// library code.
pub fn panic_freedom(c: &Cleaned, file: &str, spans: &[(usize, usize)], out: &mut Vec<Diagnostic>) {
    const HELP: &str = "propagate errors with `?`, pattern-match the `Option`, or use \
                        `.get()`; a justified exception needs \
                        `// xtask-lint: allow(XL001) -- <reason>`";
    let b = &c.text;
    for &(s, e) in &idents(b) {
        if in_spans(spans, s) {
            continue;
        }
        let word = b.get(s..e).unwrap_or_default();
        match word {
            b"unwrap" | b"expect" => {
                let is_method = prev_non_ws(b, s) == b'.';
                let (nxt, _) = next_non_ws(b, e);
                if is_method && nxt == b'(' {
                    let name = String::from_utf8_lossy(word).into_owned();
                    emit(
                        out,
                        c,
                        file,
                        "XL001",
                        s,
                        format!("`.{name}()` in library code"),
                        HELP,
                    );
                }
            }
            b"panic" | b"todo" | b"unreachable" | b"unimplemented" => {
                let (nxt, _) = next_non_ws(b, e);
                // `panic` as a path segment (e.g. `clippy::panic`) has no `!`.
                if nxt == b'!' && prev_non_ws(b, s) != b':' {
                    let name = String::from_utf8_lossy(word).into_owned();
                    emit(
                        out,
                        c,
                        file,
                        "XL001",
                        s,
                        format!("`{name}!` in library code"),
                        HELP,
                    );
                }
            }
            _ => {}
        }
    }
    // Slice/array indexing `x[i]`. A `[` after a keyword (`&mut [T]`,
    // `as [u8; 4]`, `return [..]`, `let [a, b @ ..] = ...` slice
    // patterns) opens a type, array literal, or pattern — not an index
    // expression.
    const KEYWORDS_BEFORE_BRACKET: &[&[u8]] = &[
        b"mut", b"dyn", b"as", b"in", b"return", b"break", b"if", b"else", b"match", b"impl",
        b"where", b"move", b"ref", b"const", b"static", b"let",
    ];
    let mut i = 0usize;
    while i < b.len() {
        if at(b, i) == b'[' && !in_spans(spans, i) {
            let p = prev_non_ws(b, i);
            let (is_keyword, is_lifetime) = if is_ident_byte(p) {
                let word = ident_ending_before(b, i);
                // `&'a [T]` — the ident before `[` is a lifetime, so the
                // bracket opens a slice type, not an index expression.
                let mut j = i;
                while j > 0 && at(b, j - 1).is_ascii_whitespace() {
                    j -= 1;
                }
                let start = j.saturating_sub(word.len());
                (
                    KEYWORDS_BEFORE_BRACKET.contains(&word),
                    start > 0 && at(b, start - 1) == b'\'',
                )
            } else {
                (false, false)
            };
            if (is_ident_byte(p) || p == b')' || p == b']' || p == b'?')
                && p != 0
                && !is_keyword
                && !is_lifetime
            {
                emit(
                    out,
                    c,
                    file,
                    "XL001",
                    i,
                    "slice indexing (can panic) in library code".to_string(),
                    HELP,
                );
            }
        }
        i += 1;
    }
}

/// True when a token adjacent to `==`/`!=` looks like an f32/f64 value.
fn floatish(tok: &str) -> bool {
    let t = tok.trim_matches(|ch: char| ",;)}(".contains(ch));
    if t.is_empty() {
        return false;
    }
    if t.starts_with("f64") || t.starts_with("f32") {
        return true; // f64::NAN, f64::INFINITY, bare casts
    }
    let first_digit = t.as_bytes().first().is_some_and(u8::is_ascii_digit);
    if !first_digit || t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    t.ends_with("f64")
        || t.ends_with("f32")
        || t.contains('.')
        || t.contains('e')
        || t.contains('E')
}

/// XL002 — float-comparison discipline: direct `==`/`!=` with a float
/// operand, and raw `dist`/`sq_dist` results compared against thresholds
/// instead of going through `dbscout_spatial::distance::within`.
pub fn float_discipline(
    c: &Cleaned,
    file: &str,
    scope: Scope,
    spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let b = &c.text;
    if scope.float_eq {
        let mut i = 0usize;
        while i + 1 < b.len() {
            let two = (at(b, i), at(b, i + 1));
            let is_cmp = two == (b'=', b'=') || two == (b'!', b'=');
            // Exclude `<=`, `>=`, `=>`, `==` inside `===`-like runs (none
            // in Rust) and compound assignment `+=` etc.
            let prev = at(b, i.wrapping_sub(1));
            let next = at(b, i + 2);
            if is_cmp
                && !in_spans(spans, i)
                && prev != b'<'
                && prev != b'>'
                && prev != b'='
                && prev != b'!'
                && next != b'='
            {
                let left = last_token_before(b, i);
                let right = first_token_after(b, i + 2);
                if floatish(&left) || floatish(&right) {
                    emit(
                        out,
                        c,
                        file,
                        "XL002",
                        i,
                        format!(
                            "direct float comparison `{left} {}{} {right}`",
                            two.0 as char, '='
                        ),
                        "compare against a tolerance, use `f64::total_cmp`, or the \
                         `dbscout_spatial::distance` helpers",
                    );
                }
            }
            i += 1;
        }
    }
    if scope.distance_predicate {
        for &(s, e) in &idents(b) {
            let word = b.get(s..e).unwrap_or_default();
            if (word == b"dist" || word == b"sq_dist")
                && !in_spans(spans, s)
                && prev_non_ws(b, s) != b'.'
            {
                let (open, open_pos) = next_non_ws(b, e);
                if open != b'(' {
                    continue;
                }
                let close = matching_paren(b, open_pos);
                let (after, _) = next_non_ws(b, close);
                if after == b'<' || after == b'>' {
                    emit(
                        out,
                        c,
                        file,
                        "XL002",
                        s,
                        format!(
                            "raw `{}(..)` compared against a threshold",
                            String::from_utf8_lossy(word)
                        ),
                        "distance predicates must go through \
                         `dbscout_spatial::distance::within` so the closed-ball \
                         convention stays in one place",
                    );
                }
            }
        }
    }
}

/// Byte offset just past the paren matching the `(` at `open`.
fn matching_paren(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match at(b, i) {
            b'(' => depth += 1,
            b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

fn last_token_before(b: &[u8], pos: usize) -> String {
    let mut end = pos;
    while end > 0 && at(b, end - 1).is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 {
        let c = at(b, start - 1);
        if c.is_ascii_whitespace() || b";,{}&|<>=!+*".contains(&c) {
            break;
        }
        start -= 1;
    }
    String::from_utf8_lossy(b.get(start..end).unwrap_or_default()).into_owned()
}

fn first_token_after(b: &[u8], pos: usize) -> String {
    let (_, start) = next_non_ws(b, pos);
    let mut end = start;
    while end < b.len() {
        let c = at(b, end);
        if c.is_ascii_whitespace() || b";,{}&|<>=!+*".contains(&c) {
            break;
        }
        end += 1;
    }
    String::from_utf8_lossy(b.get(start..end).unwrap_or_default()).into_owned()
}

/// XL003 — parameter-validation coverage: a `pub fn` taking raw
/// `eps: f64` or `min_pts: usize` arguments must reach a validation call
/// in its body.
pub fn param_validation(
    c: &Cleaned,
    file: &str,
    spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    const MARKERS: [&str; 6] = [
        "validate_eps(",
        "validate_min_pts(",
        "DbscoutParams::new(",
        "Self::new(",
        "is_finite(",
        "InvalidMinPts",
    ];
    let b = &c.text;
    let mut from = 0usize;
    while let Some(pos) = find(b, b"pub fn ", from) {
        from = pos + 1;
        if in_spans(spans, pos) {
            continue;
        }
        let Some(open) = find(b, b"(", pos) else {
            continue;
        };
        let close = matching_paren(b, open);
        let args = String::from_utf8_lossy(b.get(open..close).unwrap_or_default()).into_owned();
        let takes_eps = arg_with_type(&args, "eps", "f64");
        let takes_min_pts = arg_with_type(&args, "min_pts", "usize");
        if !takes_eps && !takes_min_pts {
            continue;
        }
        // Find the body (skip `;`-terminated trait signatures).
        let mut i = close;
        while i < b.len() && at(b, i) != b'{' && at(b, i) != b';' {
            i += 1;
        }
        if at(b, i) != b'{' {
            continue;
        }
        let body_end = matching_brace(b, i);
        let body = String::from_utf8_lossy(b.get(i..body_end).unwrap_or_default()).into_owned();
        if !MARKERS.iter().any(|m| body.contains(m)) {
            emit(
                out,
                c,
                file,
                "XL003",
                pos,
                "public function takes raw `eps`/`min_pts` but never validates them".to_string(),
                "call `DbscoutParams::new` (or the `validate_eps`/`validate_min_pts` \
                 helpers) before using the values",
            );
        }
    }
}

/// True when the argument list declares `name: ... type ...` for a raw
/// parameter (e.g. `eps: f64`, `min_pts: usize`).
fn arg_with_type(args: &str, name: &str, ty: &str) -> bool {
    let mut from = 0usize;
    while let Some(p) = args.get(from..).and_then(|s| s.find(name)) {
        let abs = from + p;
        from = abs + 1;
        let before_ok = abs == 0
            || !args
                .as_bytes()
                .get(abs - 1)
                .copied()
                .is_some_and(|ch| ch.is_ascii_alphanumeric() || ch == b'_');
        let rest = args.get(abs + name.len()..).unwrap_or("").trim_start();
        if before_ok && rest.starts_with(':') {
            let ty_part = rest.get(1..).unwrap_or("");
            let ty_tok: String = ty_part
                .chars()
                .take_while(|&ch| ch != ',' && ch != ')')
                .collect();
            if ty_tok.contains(ty) {
                return true;
            }
        }
    }
    false
}

/// XL004 — error-type hygiene: every public type in an `error.rs` must
/// implement `Display`, `std::error::Error`, and carry a compile-time
/// `Send + Sync + 'static` assertion.
pub fn error_hygiene(c: &Cleaned, file: &str, out: &mut Vec<Diagnostic>) {
    let b = &c.text;
    let text = String::from_utf8_lossy(b).into_owned();
    for kw in ["pub enum ", "pub struct "] {
        let mut from = 0usize;
        while let Some(p) = text.get(from..).and_then(|s| s.find(kw)) {
            let abs = from + p;
            from = abs + kw.len();
            let name: String = text
                .get(abs + kw.len()..)
                .unwrap_or("")
                .chars()
                .take_while(|ch| ch.is_ascii_alphanumeric() || *ch == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let mut missing = Vec::new();
            if !text.contains(&format!("Display for {name}")) {
                missing.push("a `fmt::Display` impl");
            }
            if !text.contains(&format!("Error for {name}")) {
                missing.push("a `std::error::Error` impl");
            }
            if !text.contains(&format!("_assert_error_bounds::<{name}>")) {
                missing.push("the `_assert_error_bounds::<T>()` Send+Sync assertion");
            }
            if !missing.is_empty() {
                emit(
                    out,
                    c,
                    file,
                    "XL004",
                    abs,
                    format!("error type `{name}` is missing {}", missing.join(", ")),
                    "public error types must implement Display and std::error::Error, \
                     and assert `Send + Sync + 'static` via \
                     `const _: () = _assert_error_bounds::<T>();`",
                );
            }
        }
    }
}

/// XL005 — `catch_unwind` confinement: panic recovery is the dataflow
/// executor's task boundary and must not leak anywhere else. Swallowing
/// panics elsewhere hides bugs that the retry machinery would otherwise
/// surface (and double-counts recovery attempts).
pub fn catch_unwind_confinement(
    c: &Cleaned,
    file: &str,
    spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let b = &c.text;
    for &(s, e) in &idents(b) {
        if in_spans(spans, s) {
            continue;
        }
        if b.get(s..e).unwrap_or_default() == b"catch_unwind" {
            emit(
                out,
                c,
                file,
                "XL005",
                s,
                "`catch_unwind` outside the dataflow executor".to_string(),
                "panic recovery belongs to `dbscout-dataflow`'s executor (the task \
                 boundary); return a `Result` and let the engine's retry budget \
                 handle the failure",
            );
        }
    }
}

/// XL006 — stream hygiene: library crates must not write to stdout or
/// stderr via `println!`/`eprintln!` (or their non-newline forms). A
/// library that prints cannot be embedded: its chatter corrupts
/// machine-readable output (`--trace-out`, `--report-json`) and cannot
/// be silenced by the caller. Route diagnostics through the telemetry
/// `Recorder` or return them.
pub fn stdout_discipline(
    c: &Cleaned,
    file: &str,
    spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    const HELP: &str = "library crates must stay silent: return the information, or emit \
                        it through a `dbscout_telemetry::Recorder` the caller installs";
    let b = &c.text;
    for &(s, e) in &idents(b) {
        if in_spans(spans, s) {
            continue;
        }
        let word = b.get(s..e).unwrap_or_default();
        if matches!(word, b"println" | b"eprintln" | b"print" | b"eprint") {
            let (nxt, _) = next_non_ws(b, e);
            // `print` as a path segment (e.g. `clippy::print_stdout`) has
            // no `!`.
            if nxt == b'!' && prev_non_ws(b, s) != b':' {
                let name = String::from_utf8_lossy(word).into_owned();
                emit(
                    out,
                    c,
                    file,
                    "XL006",
                    s,
                    format!("`{name}!` in library code"),
                    HELP,
                );
            }
        }
    }
}

/// The hash-ordered container types whose iteration order depends on
/// hash-bucket layout rather than on anything the algorithm controls.
const HASH_TYPES: [&[u8]; 3] = [b"HashMap", b"HashSet", b"DetHashMap"];

/// Methods that observe a container's iteration order.
const ITER_METHODS: [&[u8]; 10] = [
    b"iter",
    b"iter_mut",
    b"keys",
    b"values",
    b"values_mut",
    b"into_iter",
    b"into_keys",
    b"into_values",
    b"drain",
    b"retain",
];

/// If the hash-type name starting at `s` sits in type position
/// (`name: [&][mut] [path::]HashMap<..>`), returns the binding ident.
fn binding_for_type(b: &[u8], s: usize) -> Option<Vec<u8>> {
    let mut j = s;
    loop {
        let (p, pp) = prev_non_ws_pos(b, j);
        if p == b':' && pp > 0 && at(b, pp - 1) == b':' {
            // `seg::Type` — hop backwards over the path segment.
            let seg = ident_ending_before(b, pp - 1);
            if seg.is_empty() {
                return None;
            }
            j = pp - 1 - seg.len();
        } else if p == b'&' {
            j = pp;
        } else if is_ident_byte(p) {
            let word = ident_ending_before(b, j);
            if word == b"mut" {
                j = pp + 1 - word.len();
            } else {
                return None;
            }
        } else if p == b':' {
            let name = ident_ending_before(b, pp);
            return (!name.is_empty()).then(|| name.to_vec());
        } else {
            return None;
        }
    }
}

/// If the hash-type name ending at `e` heads a constructor call
/// (`let [mut] name = HashMap::new()`), returns the binding ident.
fn binding_for_ctor(b: &[u8], s: usize, e: usize) -> Option<Vec<u8>> {
    let (n, np) = next_non_ws(b, e);
    if n != b':' || at(b, np + 1) != b':' {
        return None;
    }
    let (p, pp) = prev_non_ws_pos(b, s);
    if p != b'=' {
        return None;
    }
    let name = ident_ending_before(b, pp);
    (!name.is_empty() && name != b"mut").then(|| name.to_vec())
}

/// XL007 — determinism: iterating a `HashMap`/`HashSet`/`DetHashMap`
/// yields entries in hash-bucket order. Where that order can reach
/// results or shuffle payloads it threatens the byte-identical-labels
/// guarantee, so iteration over hash-typed bindings is flagged. Sites
/// proven order-insensitive carry a per-site
/// `// xlint: ordered -- reason` waiver.
///
/// Binding tracking is per file and purely lexical: a name counts as
/// hash-typed when it is declared with a hash container as the *head* of
/// its type (`cells: HashMap<..>`, not `partials: Vec<HashMap<..>>`) or
/// assigned from a hash-container constructor path.
pub fn determinism(c: &Cleaned, file: &str, spans: &[(usize, usize)], out: &mut Vec<Diagnostic>) {
    const HELP: &str = "drain through a canonical order (sort, or \
                        `shuffle::drain_by_key_hash`); if the site is provably \
                        order-insensitive, waive it with \
                        `// xlint: ordered -- <reason>`";
    let b = &c.text;
    let ids = idents(b);
    let mut tracked: Vec<Vec<u8>> = Vec::new();
    for &(s, e) in &ids {
        let word = b.get(s..e).unwrap_or_default();
        if !HASH_TYPES.contains(&word) {
            continue;
        }
        let binding = binding_for_type(b, s).or_else(|| binding_for_ctor(b, s, e));
        if let Some(name) = binding {
            if !tracked.contains(&name) {
                tracked.push(name);
            }
        }
    }
    if tracked.is_empty() {
        return;
    }
    let flag = |pos: usize, name: &[u8], how: &str, out: &mut Vec<Diagnostic>| {
        if c.ordered_at(c.line_of(pos)) {
            return;
        }
        emit(
            out,
            c,
            file,
            "XL007",
            pos,
            format!(
                "hash-ordered iteration over `{}` ({how}) can leak nondeterministic order",
                String::from_utf8_lossy(name)
            ),
            HELP,
        );
    };
    for &(s, e) in &ids {
        if in_spans(spans, s) {
            continue;
        }
        let word = b.get(s..e).unwrap_or_default();
        // `for .. in <tracked> {` — the loop desugars to `into_iter()`.
        if word == b"in" {
            let (mut n, mut np) = next_non_ws(b, e);
            while n == b'&' {
                (n, np) = next_non_ws(b, np + 1);
            }
            if !is_ident_byte(n) {
                continue;
            }
            let mut k = np;
            while k < b.len() && is_ident_byte(at(b, k)) {
                k += 1;
            }
            let name = b.get(np..k).unwrap_or_default();
            let name = if name == b"mut" {
                let (_, mp) = next_non_ws(b, k);
                let mut m = mp;
                while m < b.len() && is_ident_byte(at(b, m)) {
                    m += 1;
                }
                k = m;
                b.get(mp..m).unwrap_or_default()
            } else {
                name
            };
            let (after, _) = next_non_ws(b, k);
            if after == b'{' && tracked.iter().any(|t| t == name) {
                flag(np, name, "for-loop", out);
            }
            continue;
        }
        // `<tracked>.iter()` and friends.
        if !tracked.iter().any(|t| t == word) {
            continue;
        }
        let (dot, dp) = next_non_ws(b, e);
        if dot != b'.' {
            continue;
        }
        let (m, mp) = next_non_ws(b, dp + 1);
        if !is_ident_byte(m) {
            continue;
        }
        let mut k = mp;
        while k < b.len() && is_ident_byte(at(b, k)) {
            k += 1;
        }
        let method = b.get(mp..k).unwrap_or_default();
        let (open, _) = next_non_ws(b, k);
        if open == b'(' && ITER_METHODS.contains(&method) {
            flag(
                s,
                word,
                &format!(".{}()", String::from_utf8_lossy(method)),
                out,
            );
        }
    }
}

/// XL008 — lock discipline, scoped to the dataflow crate: (a) every
/// `lock()`/`try_lock()` call goes through `executor::lock_unpoisoned`
/// (so a panicking task cannot wedge a stage behind a poisoned mutex);
/// (b) a guard bound from `lock_unpoisoned` must be dropped before any
/// task-boundary call — holding it across `spawn`/`scope`/`join`/
/// `catch_unwind`/`sleep` invites deadlock and serializes the stage.
pub fn lock_discipline(
    c: &Cleaned,
    file: &str,
    spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    const BOUNDARIES: [&[u8]; 5] = [b"spawn", b"scope", b"join", b"catch_unwind", b"sleep"];
    let b = &c.text;
    // The sanctioned wrapper's own body is the one place allowed to call
    // `.lock()` directly.
    let wrapper = find(b, b"fn lock_unpoisoned", 0).map(|p| {
        let mut i = p;
        while i < b.len() && at(b, i) != b'{' {
            i += 1;
        }
        (p, matching_brace(b, i))
    });
    for &(s, e) in &idents(b) {
        if in_spans(spans, s) {
            continue;
        }
        let word = b.get(s..e).unwrap_or_default();
        if (word == b"lock" || word == b"try_lock") && prev_non_ws(b, s) == b'.' {
            let (open, _) = next_non_ws(b, e);
            if open != b'(' {
                continue;
            }
            if wrapper.is_some_and(|(a, z)| a <= s && s < z) {
                continue;
            }
            emit(
                out,
                c,
                file,
                "XL008",
                s,
                format!("raw `.{}()` call", String::from_utf8_lossy(word)),
                "route all executor locking through `executor::lock_unpoisoned` so \
                 poisoned mutexes are recovered in one audited place",
            );
            continue;
        }
        if word != b"lock_unpoisoned" {
            continue;
        }
        // Guard binding: `let [mut] g = [path::]lock_unpoisoned(..);`
        // (a call used as a temporary dies at the end of its statement
        // and cannot be held across anything).
        let (open, op) = next_non_ws(b, e);
        if open != b'(' {
            continue;
        }
        let close = matching_paren(b, op);
        let (semi, sp) = next_non_ws(b, close);
        if semi != b';' {
            continue;
        }
        let mut j = s;
        let name = loop {
            let (p, pp) = prev_non_ws_pos(b, j);
            if p == b':' && pp > 0 && at(b, pp - 1) == b':' {
                let seg = ident_ending_before(b, pp - 1);
                if seg.is_empty() {
                    break None;
                }
                j = pp - 1 - seg.len();
            } else if p == b'=' {
                let n = ident_ending_before(b, pp);
                break (!n.is_empty() && n != b"mut").then(|| n.to_vec());
            } else {
                break None;
            }
        };
        let Some(name) = name else {
            continue;
        };
        // Scan the guard's live range: from the `;` to `drop(name)` or
        // the end of the enclosing block.
        let mut depth = 0i32;
        let mut i = sp + 1;
        while i < b.len() {
            let cb = at(b, i);
            if cb == b'{' {
                depth += 1;
            } else if cb == b'}' {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            if is_ident_byte(cb) && !is_ident_byte(at(b, i.wrapping_sub(1))) {
                let start = i;
                while i < b.len() && is_ident_byte(at(b, i)) {
                    i += 1;
                }
                let w = b.get(start..i).unwrap_or_default();
                if w == b"drop" {
                    let (o2, op2) = next_non_ws(b, i);
                    if o2 == b'(' {
                        let c2 = matching_paren(b, op2);
                        let inner: Vec<u8> = b
                            .get(op2 + 1..c2.saturating_sub(1))
                            .unwrap_or_default()
                            .iter()
                            .copied()
                            .filter(|bb| !bb.is_ascii_whitespace())
                            .collect();
                        if inner == name {
                            break;
                        }
                    }
                } else if BOUNDARIES.contains(&w) {
                    emit(
                        out,
                        c,
                        file,
                        "XL008",
                        s,
                        format!(
                            "mutex guard `{}` is live across `{}`",
                            String::from_utf8_lossy(&name),
                            String::from_utf8_lossy(w)
                        ),
                        "drop the guard (or scope it in a block) before crossing a \
                         task boundary",
                    );
                    break;
                }
                continue;
            }
            i += 1;
        }
    }
}

/// XL009 — atomic-ordering discipline: `Ordering::Relaxed` on an atomic
/// `load`/`store` gives no happens-before edge, so a Relaxed flag or
/// counter read can observe stale state across threads. Loads that gate
/// cross-thread visibility need Acquire, matching stores need Release
/// (the executor's `settled` counter is the model). Read-modify-write
/// tallies (`fetch_add`) folded after a join are not flagged.
pub fn atomic_ordering(
    c: &Cleaned,
    file: &str,
    spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let b = &c.text;
    for &(s, e) in &idents(b) {
        if in_spans(spans, s) {
            continue;
        }
        let word = b.get(s..e).unwrap_or_default();
        if (word != b"load" && word != b"store") || prev_non_ws(b, s) != b'.' {
            continue;
        }
        let (open, op) = next_non_ws(b, e);
        if open != b'(' {
            continue;
        }
        let close = matching_paren(b, op);
        let mut from = op;
        while let Some(p) = find(b, b"Relaxed", from) {
            if p >= close {
                break;
            }
            from = p + 1;
            if is_ident_byte(at(b, p.wrapping_sub(1))) || is_ident_byte(at(b, p + 7)) {
                continue;
            }
            emit(
                out,
                c,
                file,
                "XL009",
                p,
                format!(
                    "`Ordering::Relaxed` on an atomic `.{}()`",
                    String::from_utf8_lossy(word)
                ),
                "use Acquire (loads) / Release (stores) when the value gates \
                 cross-thread visibility; a tally folded strictly after a join may \
                 keep Relaxed with `// xtask-lint: allow(XL009) -- <reason>`",
            );
            break;
        }
    }
}

/// XL010 — kernel-lane confinement: explicit lane-unrolled loops and
/// architecture intrinsics are audited against the scalar reference in
/// exactly two places — `crates/spatial/src/distance.rs` (the lane
/// kernels) and `cell_major.rs` (the slot-order dispatch that keeps
/// counters kernel-invariant). Anywhere else, `std::arch`/`core::arch`
/// paths, `target_feature` attributes, and functions named `*unrolled*`
/// or `*simd*` are flagged: a stray hand-vectorized loop bypasses the
/// equivalence suite and threatens byte-identical labels.
pub fn kernel_lane(c: &Cleaned, file: &str, spans: &[(usize, usize)], out: &mut Vec<Diagnostic>) {
    const HELP: &str = "lane-unrolled and intrinsic code belongs in \
                        `crates/spatial/src/distance.rs` (kernels) or `cell_major.rs` \
                        (dispatch), where the scalar-equivalence suite pins it; call \
                        through `KernelKind` instead, or waive a proven site with \
                        `// xtask-lint: allow(XL010) -- <reason>`";
    let b = &c.text;
    let ids = idents(b);
    for (n, &(s, e)) in ids.iter().enumerate() {
        if in_spans(spans, s) {
            continue;
        }
        let word = b.get(s..e).unwrap_or_default();
        match word {
            // `std::arch` / `core::arch` path segments.
            b"arch" => {
                let (p, pp) = prev_non_ws_pos(b, s);
                if p == b':' && pp > 0 && at(b, pp - 1) == b':' {
                    let seg = ident_ending_before(b, pp - 1);
                    if seg == b"std" || seg == b"core" {
                        emit(
                            out,
                            c,
                            file,
                            "XL010",
                            s,
                            format!(
                                "`{}::arch` intrinsics outside the kernel modules",
                                String::from_utf8_lossy(seg)
                            ),
                            HELP,
                        );
                    }
                }
            }
            // `#[target_feature(..)]` / `cfg(target_feature = ..)`.
            b"target_feature" => {
                emit(
                    out,
                    c,
                    file,
                    "XL010",
                    s,
                    "`target_feature` gate outside the kernel modules".to_string(),
                    HELP,
                );
            }
            // `fn <name>` where the name marks a lane kernel.
            b"fn" => {
                let Some(&(ns, ne)) = ids.get(n + 1) else {
                    continue;
                };
                let (nxt, np) = next_non_ws(b, e);
                if !is_ident_byte(nxt) || np != ns {
                    continue;
                }
                let name = String::from_utf8_lossy(b.get(ns..ne).unwrap_or_default()).into_owned();
                if name.contains("unrolled") || name.contains("simd") {
                    emit(
                        out,
                        c,
                        file,
                        "XL010",
                        ns,
                        format!("lane-kernel function `{name}` outside the kernel modules"),
                        HELP,
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean;

    fn run_panic(src: &str) -> Vec<Diagnostic> {
        let c = clean(src);
        let spans = test_spans(&c);
        let mut out = Vec::new();
        panic_freedom(&c, "test.rs", &spans, &mut out);
        out
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged() {
        let d = run_panic("fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d.first().map(|d| d.rule), Some("XL001"));
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        assert!(run_panic("fn f() { x.unwrap_or(0); x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); a[0]; } }";
        assert!(run_panic(src).is_empty());
    }

    #[test]
    fn indexing_is_flagged_but_not_attributes_or_types() {
        let d = run_panic("fn f(a: &[u8], v: Vec<[f64; 2]>) -> [u8; 4] { a[0] }");
        assert_eq!(d.len(), 1, "{d:?}");
        let src = "#[derive(Debug)]\nstruct S { x: [u8; 4] }";
        assert!(run_panic(src).is_empty());
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        assert!(run_panic("struct S<'a, F> { tasks: &'a [F] }").is_empty());
        assert!(run_panic("fn f<'a>(xs: &'a [u8]) -> &'a [u8] { xs }").is_empty());
    }

    #[test]
    fn slice_patterns_are_not_indexing() {
        // `let`/`if let` slice patterns destructure; they cannot panic
        // (refutable forms don't compile without an `else`/`if let`).
        let src = "fn f(rest: &mut [u8]) {\n    if let [version, kind, len @ ..] = rest {}\n}";
        assert!(run_panic(src).is_empty());
        let src =
            "fn g(rest: &[u8]) -> u8 {\n    let [a, _b @ ..] = rest else { return 0 };\n    *a\n}";
        assert!(run_panic(src).is_empty());
    }

    #[test]
    fn macros_flagged_path_segments_not() {
        let d = run_panic("fn f() { panic!(\"boom\"); }");
        assert_eq!(d.len(), 1);
        assert!(run_panic("#![allow(clippy::panic)]\nfn f() {}").is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "fn f(a: &[u8]) -> u8 {\n    // xtask-lint: allow(XL001) -- index proven < len above\n    a[0]\n}";
        assert!(run_panic(src).is_empty());
    }

    #[test]
    fn float_eq_flagged() {
        let c = clean("fn f(x: f64) -> bool { x == 0.0 }");
        let mut out = Vec::new();
        let scope = Scope {
            float_eq: true,
            ..Scope::default()
        };
        float_discipline(&c, "t.rs", scope, &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|d| d.rule), Some("XL002"));
    }

    #[test]
    fn int_eq_not_flagged() {
        let c = clean("fn f(x: usize) -> bool { x == 0 && x != 3 }");
        let mut out = Vec::new();
        let scope = Scope {
            float_eq: true,
            ..Scope::default()
        };
        float_discipline(&c, "t.rs", scope, &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn raw_distance_compare_flagged() {
        let c = clean("fn f() { if sq_dist(a, b) <= eps_sq { } }");
        let mut out = Vec::new();
        let scope = Scope {
            distance_predicate: true,
            ..Scope::default()
        };
        float_discipline(&c, "t.rs", scope, &[], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn distance_call_without_compare_ok() {
        let c = clean("fn f() { let d = sq_dist(a, b); store(d); }");
        let mut out = Vec::new();
        let scope = Scope {
            distance_predicate: true,
            ..Scope::default()
        };
        float_discipline(&c, "t.rs", scope, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unvalidated_eps_flagged() {
        let src = "pub fn detect(store: &S, eps: f64, min_pts: usize) -> R { run(store, eps) }";
        let c = clean(src);
        let mut out = Vec::new();
        param_validation(&c, "t.rs", &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|d| d.rule), Some("XL003"));
    }

    #[test]
    fn validated_eps_ok() {
        let src = "pub fn new(eps: f64, min_pts: usize) -> Result<Self> {\n\
                   if !eps.is_finite() { return Err(e()); }\nOk(Self{eps,min_pts}) }";
        let c = clean(src);
        let mut out = Vec::new();
        param_validation(&c, "t.rs", &[], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn error_hygiene_needs_all_three() {
        let src = "pub enum MyError { A }\nimpl fmt::Display for MyError {}\n";
        let c = clean(src);
        let mut out = Vec::new();
        error_hygiene(&c, "error.rs", &mut out);
        assert_eq!(out.len(), 1);
        let d = out.first().map(|d| d.message.clone()).unwrap_or_default();
        assert!(d.contains("std::error::Error"), "{d}");
        assert!(d.contains("Send+Sync"), "{d}");
    }

    #[test]
    fn catch_unwind_flagged_outside_tests() {
        let c = clean("fn f() { let r = std::panic::catch_unwind(|| work()); }");
        let mut out = Vec::new();
        catch_unwind_confinement(&c, "t.rs", &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|d| d.rule), Some("XL005"));
    }

    #[test]
    fn catch_unwind_in_test_code_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { let _ = \
                   std::panic::catch_unwind(|| {}); }\n}";
        let c = clean(src);
        let spans = test_spans(&c);
        let mut out = Vec::new();
        catch_unwind_confinement(&c, "t.rs", &spans, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn println_in_lib_code_is_flagged() {
        let c = clean("fn f() { println!(\"x\"); eprintln!(\"y\"); print!(\"z\"); }");
        let spans = test_spans(&c);
        let mut out = Vec::new();
        stdout_discipline(&c, "t.rs", &spans, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "XL006"));
    }

    #[test]
    fn println_in_test_code_and_path_segments_are_exempt() {
        let src = "#![allow(clippy::print_stdout)]\nfn f() {}\n\
                   #[cfg(test)]\nmod tests { fn g() { println!(\"ok\"); } }";
        let c = clean(src);
        let spans = test_spans(&c);
        let mut out = Vec::new();
        stdout_discipline(&c, "t.rs", &spans, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    fn run_determinism(src: &str) -> Vec<Diagnostic> {
        let c = clean(src);
        let spans = test_spans(&c);
        let mut out = Vec::new();
        determinism(&c, "t.rs", &spans, &mut out);
        out
    }

    #[test]
    fn hash_map_iteration_is_flagged() {
        let src = "struct S { cells: HashMap<C, V> }\n\
                   fn f(s: &S) -> usize { s.cells.iter().count() }";
        let d = run_determinism(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d.first().map(|d| (d.rule, d.line)), Some(("XL007", 2)));
    }

    #[test]
    fn det_hash_map_ctor_binding_and_for_loop_flagged() {
        let src = "fn f() {\n    let mut seen = DetHashMap::default();\n\
                   for k in &seen {\n        use_it(k);\n    }\n}";
        let d = run_determinism(src);
        assert_eq!(d.first().map(|d| (d.rule, d.line)), Some(("XL007", 3)));
    }

    #[test]
    fn ordered_waiver_suppresses_determinism() {
        let src = "struct S { cells: HashMap<C, V> }\n\
                   fn f(s: &S) -> usize {\n\
                   // xlint: ordered -- summing lengths is order-free\n\
                   s.cells.values().map(Vec::len).sum() }";
        assert!(run_determinism(src).is_empty());
    }

    #[test]
    fn vec_of_hash_maps_is_not_tracked() {
        // Only bindings whose type *head* is a hash container count:
        // iterating the outer Vec is ordered.
        let src = "fn f(partials: Vec<HashMap<C, V>>) {\n\
                   for partial in partials {\n        merge(partial);\n    }\n}";
        assert!(run_determinism(src).is_empty());
    }

    #[test]
    fn point_lookups_are_not_iteration() {
        let src = "struct S { cells: HashMap<C, V> }\n\
                   fn f(s: &mut S, c: C) { s.cells.entry(c); s.cells.get(&c); \
                   let n = s.cells.len(); }";
        assert!(run_determinism(src).is_empty());
    }

    #[test]
    fn telemetry_merge_over_hash_order_is_flagged() {
        // The shape of the parent-side span merge: child telemetry keyed
        // by worker pid. Emitting spans in hash order would make the
        // merged trace (and anything derived from it) nondeterministic.
        let src = "struct Merge { spans_by_pid: HashMap<u64, Vec<WireSpan>> }\n\
                   fn flush(m: &Merge, rec: &dyn Recorder) {\n\
                   m.spans_by_pid.iter().for_each(|(pid, s)| emit(rec, *pid, s));\n}";
        let d = run_determinism(src);
        assert_eq!(d.first().map(|d| (d.rule, d.line)), Some(("XL007", 3)));
        // The actual implementation merges counters by saturating
        // addition, which is order-free and carries the waiver.
        let waived = "struct Merge { counters: HashMap<String, u64> }\n\
                      fn total(m: &Merge) -> u64 {\n\
                      // xlint: ordered -- saturating sums commute\n\
                      m.counters.values().sum() }";
        assert!(run_determinism(waived).is_empty());
    }

    fn run_locks(src: &str) -> Vec<Diagnostic> {
        let c = clean(src);
        let spans = test_spans(&c);
        let mut out = Vec::new();
        lock_discipline(&c, "t.rs", &spans, &mut out);
        out
    }

    #[test]
    fn raw_lock_calls_flagged_outside_the_wrapper() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }";
        let d = run_locks(src);
        assert_eq!(d.first().map(|d| d.rule), Some("XL008"));
        assert_eq!(
            run_locks("fn g(m: &Mutex<u32>) { m.try_lock().ok(); }").len(),
            1
        );
    }

    #[test]
    fn the_wrapper_itself_is_sanctioned() {
        let src = "pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                   match m.lock() {\n        Ok(g) => g,\n        Err(p) => p.into_inner(),\n    }\n}";
        assert!(run_locks(src).is_empty());
    }

    #[test]
    fn guard_live_across_boundary_flagged() {
        let src = "fn f() {\n    let mut g = lock_unpoisoned(&m);\n\
                   g.push(1);\n    thread::sleep(D);\n}";
        let d = run_locks(src);
        assert_eq!(d.first().map(|d| (d.rule, d.line)), Some(("XL008", 2)));
        assert!(d
            .first()
            .map(|d| d.message.contains("sleep"))
            .unwrap_or(false));
    }

    #[test]
    fn dropped_guard_is_fine() {
        let src = "fn f() {\n    let g = lock_unpoisoned(&m);\n    let n = g.len();\n\
                   drop(g);\n    thread::sleep(D);\n}";
        assert!(run_locks(src).is_empty());
        // A scoped guard dies at its block's end, before the boundary.
        let scoped = "fn f() {\n    {\n        let g = lock_unpoisoned(&m);\n\
                      g.push(1);\n    }\n    thread::sleep(D);\n}";
        assert!(run_locks(scoped).is_empty());
        // A temporary guard dies at the end of its statement.
        let temp = "fn f() {\n    let item = lock_unpoisoned(&q).pop_front();\n\
                    thread::sleep(D);\n}";
        assert!(run_locks(temp).is_empty());
    }

    #[test]
    fn telemetry_merge_must_drop_stdout_guard_before_joining() {
        // The shape of the worker pool's telemetry path: the stdout-frame
        // lock must not be held across the reader-thread join, or a
        // blocked writer wedges shutdown.
        let src = "fn drain(pool: &Pool) {\n\
                   let mut out = lock_unpoisoned(&pool.stdout);\n\
                   out.write_frame(f);\n    reader.join();\n}";
        let d = run_locks(src);
        assert_eq!(d.first().map(|d| (d.rule, d.line)), Some(("XL008", 2)));
        // Dropping the guard before the join is the sanctioned shape.
        let fixed = "fn drain(pool: &Pool) {\n\
                     {\n        let mut out = lock_unpoisoned(&pool.stdout);\n\
                     out.write_frame(f);\n    }\n    reader.join();\n}";
        assert!(run_locks(fixed).is_empty());
    }

    fn run_atomics(src: &str) -> Vec<Diagnostic> {
        let c = clean(src);
        let spans = test_spans(&c);
        let mut out = Vec::new();
        atomic_ordering(&c, "t.rs", &spans, &mut out);
        out
    }

    #[test]
    fn relaxed_load_and_store_flagged() {
        let d = run_atomics("fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Relaxed) }");
        assert_eq!(d.first().map(|d| d.rule), Some("XL009"));
        let d = run_atomics("fn f(a: &AtomicUsize) { a.store(0, Ordering::Relaxed); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn acquire_release_and_rmw_tallies_pass() {
        assert!(
            run_atomics("fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Acquire) }").is_empty()
        );
        assert!(run_atomics("fn f(a: &AtomicUsize) { a.store(1, Ordering::Release); }").is_empty());
        // fetch_add is a read-modify-write tally, not a gate.
        assert!(
            run_atomics("fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }").is_empty()
        );
    }

    fn run_kernel_lane(src: &str) -> Vec<Diagnostic> {
        let c = clean(src);
        let spans = test_spans(&c);
        let mut out = Vec::new();
        kernel_lane(&c, "t.rs", &spans, &mut out);
        out
    }

    #[test]
    fn arch_paths_and_lane_fn_names_flagged() {
        let d = run_kernel_lane("fn f() { use std::arch::x86_64::_mm_set1_pd; }");
        assert_eq!(d.first().map(|d| d.rule), Some("XL010"));
        assert_eq!(run_kernel_lane("use core::arch::asm;").len(), 1);
        assert_eq!(
            run_kernel_lane("fn sq_dists_unrolled(a: &[f64]) -> f64 { 0.0 }").len(),
            1
        );
        assert_eq!(
            run_kernel_lane("#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}").len(),
            1
        );
    }

    #[test]
    fn plain_code_and_other_arch_idents_pass() {
        assert!(run_kernel_lane("fn fast_sum(xs: &[f64]) -> f64 { xs.iter().sum() }").is_empty());
        // `arch` not rooted at std/core is someone's module name.
        assert!(run_kernel_lane("use crate::arch::helper;").is_empty());
        // Test code is exempt, like every other structural rule.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests { fn check_unrolled() {} }";
        assert!(run_kernel_lane(src).is_empty());
    }

    #[test]
    fn error_hygiene_complete_type_passes() {
        let src = "pub enum MyError { A }\n\
                   impl fmt::Display for MyError {}\n\
                   impl std::error::Error for MyError {}\n\
                   const _: () = _assert_error_bounds::<MyError>();\n";
        let c = clean(src);
        let mut out = Vec::new();
        error_hygiene(&c, "error.rs", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
