//! Fixture-driven self-tests for the lint suite.
//!
//! Each fixture under `tests/fixtures/` is linted as if it sat at a given
//! workspace-relative path (which determines the rule scope), and the
//! findings must match **exactly** — rule ids and 1-based line numbers.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use xtask::{lint_source, scope_for};

fn lint_fixture(rel_path: &str, fixture: &str) -> Vec<(&'static str, usize)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let source = std::fs::read_to_string(format!("{dir}/{fixture}")).expect("fixture exists");
    lint_source(rel_path, &source, scope_for(rel_path))
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn xl001_panic_paths_flagged_at_exact_lines() {
    assert_eq!(
        lint_fixture("crates/core/src/panics.rs", "fail/panics.rs"),
        vec![
            ("XL001", 4),  // .unwrap()
            ("XL001", 5),  // .expect(...)
            ("XL001", 7),  // panic!
            ("XL001", 9),  // v[0]
            ("XL001", 13), // todo!
        ]
    );
}

#[test]
fn xl001_is_scoped_to_the_panic_free_crates() {
    // The same panic-ridden source is fine in a crate outside the policy.
    assert_eq!(
        lint_fixture("crates/data/src/panics.rs", "fail/panics.rs"),
        vec![]
    );
}

#[test]
fn xl002_float_comparisons_flagged_at_exact_lines() {
    assert_eq!(
        lint_fixture("crates/dataflow/src/float_eq.rs", "fail/float_eq.rs"),
        vec![
            ("XL002", 4), // x == 0.0
            ("XL002", 8), // dist(a, b) <= limit
        ]
    );
}

#[test]
fn xl003_unvalidated_params_flagged() {
    assert_eq!(
        lint_fixture("crates/core/src/params_fixture.rs", "fail/params.rs"),
        vec![("XL003", 3)]
    );
}

#[test]
fn xl003_only_applies_to_core() {
    // `eps`/`min_pts` in other crates are someone else's contract.
    assert_eq!(
        lint_fixture("crates/metrics/src/params_fixture.rs", "fail/params.rs"),
        vec![]
    );
}

#[test]
fn xl004_bare_error_enum_flagged() {
    assert_eq!(
        lint_fixture("crates/core/src/error.rs", "fail/error.rs"),
        vec![("XL004", 3)]
    );
    // The same file outside an `error.rs` path is unscoped.
    assert_eq!(
        lint_fixture("crates/core/src/types.rs", "fail/error.rs"),
        vec![]
    );
}

#[test]
fn xl005_catch_unwind_flagged_outside_the_executor() {
    assert_eq!(
        lint_fixture("crates/data/src/recover.rs", "fail/catch_unwind.rs"),
        vec![("XL005", 4)]
    );
    // The dataflow executor is the sanctioned panic boundary.
    assert_eq!(
        lint_fixture("crates/dataflow/src/executor.rs", "fail/catch_unwind.rs"),
        vec![]
    );
}

#[test]
fn xl006_prints_flagged_in_library_crates_only() {
    let expected = vec![
        ("XL006", 3), // println!
        ("XL006", 4), // eprintln!
        ("XL006", 5), // print!
    ];
    assert_eq!(
        lint_fixture("crates/telemetry/src/noisy.rs", "fail/stdout.rs"),
        expected
    );
    assert_eq!(
        lint_fixture("crates/data/src/noisy.rs", "fail/stdout.rs"),
        expected
    );
    // The CLI prints by design.
    assert_eq!(
        lint_fixture("crates/cli/src/noisy.rs", "fail/stdout.rs"),
        vec![]
    );
}

#[test]
fn xl007_hash_iteration_flagged_at_exact_lines() {
    assert_eq!(
        lint_fixture("crates/core/src/determinism.rs", "fail/determinism.rs"),
        vec![
            ("XL007", 6),  // for .. in cells.values()
            ("XL007", 13), // seen.into_iter()
            ("XL007", 19), // for .. in &counts (ctor-tracked binding)
        ]
    );
}

#[test]
fn xl007_is_scoped_to_result_affecting_crates() {
    // The CLI renders results; it never produces them.
    assert_eq!(
        lint_fixture("crates/cli/src/determinism.rs", "fail/determinism.rs"),
        vec![]
    );
}

#[test]
fn xl008_raw_locks_and_held_guards_flagged() {
    assert_eq!(
        lint_fixture("crates/dataflow/src/locking.rs", "fail/locking.rs"),
        vec![
            ("XL008", 9),  // raw .lock() outside the wrapper
            ("XL008", 13), // raw .try_lock()
            ("XL008", 17), // guard live across .join()
        ]
    );
}

#[test]
fn xl008_is_scoped_to_the_dataflow_crate() {
    assert_eq!(
        lint_fixture("crates/core/src/locking.rs", "fail/locking.rs"),
        vec![]
    );
}

#[test]
fn xl009_relaxed_load_store_flagged_rmw_exempt() {
    assert_eq!(
        lint_fixture("crates/core/src/atomics.rs", "fail/atomics.rs"),
        vec![
            ("XL009", 5), // Relaxed store
            ("XL009", 9), // Relaxed load
        ]
    );
}

#[test]
fn xl010_kernel_lane_tokens_flagged_at_exact_lines() {
    let expected = vec![
        ("XL010", 3),  // fn accumulate_unrolled
        ("XL010", 9),  // #[target_feature(..)]
        ("XL010", 10), // fn simd_sum
        ("XL010", 11), // use std::arch
    ];
    assert_eq!(
        lint_fixture("crates/core/src/fast.rs", "fail/kernel_lane.rs"),
        expected
    );
    // Confinement is workspace-wide, not just the detection crates.
    assert_eq!(
        lint_fixture("crates/data/src/fast.rs", "fail/kernel_lane.rs"),
        expected
    );
}

#[test]
fn xl010_spatial_kernel_modules_are_sanctioned() {
    assert_eq!(
        lint_fixture("crates/spatial/src/distance.rs", "fail/kernel_lane.rs"),
        vec![]
    );
    assert_eq!(
        lint_fixture("crates/spatial/src/cell_major.rs", "fail/kernel_lane.rs"),
        vec![]
    );
}

#[test]
fn xl000_malformed_directive_flagged() {
    assert_eq!(
        lint_fixture("crates/data/src/malformed.rs", "fail/malformed.rs"),
        vec![("XL000", 4)]
    );
}

#[test]
fn pass_fixtures_are_clean_under_the_strictest_scope() {
    assert_eq!(
        lint_fixture("crates/core/src/clean.rs", "pass/clean.rs"),
        vec![]
    );
    assert_eq!(
        lint_fixture("crates/core/src/error.rs", "pass/error.rs"),
        vec![]
    );
    // Waived / canonicalized hash iteration passes XL007.
    assert_eq!(
        lint_fixture("crates/core/src/determinism.rs", "pass/determinism.rs"),
        vec![]
    );
}

#[test]
fn lexer_edge_cases_do_not_leak_phantom_findings() {
    // Raw strings, nested block comments, and byte-char quotes must all
    // be blanked; a regression in any of them would surface the decoy
    // `.unwrap()` texts in this fixture as XL001 findings.
    assert_eq!(
        lint_fixture("crates/core/src/lexer_edges.rs", "pass/lexer_edges.rs"),
        vec![]
    );
}

/// End-to-end: drive the binary against throwaway mini-workspaces and
/// check exit codes plus `--json` output.
mod binary {
    use std::path::{Path, PathBuf};
    use std::process::Command;

    struct TempRoot(PathBuf);

    impl TempRoot {
        fn new(tag: &str, files: &[(&str, &str)]) -> Self {
            let dir =
                std::env::temp_dir().join(format!("xtask-fixture-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            for (rel, content) in files {
                let path = dir.join(rel);
                std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
                    .expect("mkdir");
                std::fs::write(path, content).expect("write fixture");
            }
            TempRoot(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempRoot {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn run_lint(root: &Path, json: bool) -> (bool, String) {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
        cmd.arg("lint").arg("--root").arg(root);
        if json {
            cmd.arg("--json");
        }
        let out = cmd.output().expect("spawn xtask");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }

    #[test]
    fn clean_root_exits_zero() {
        let root = TempRoot::new(
            "clean",
            &[(
                "crates/core/src/lib.rs",
                "pub fn ok(v: &[u32]) -> Option<u32> {\n    v.first().copied()\n}\n",
            )],
        );
        let (ok, stdout) = run_lint(root.path(), false);
        assert!(ok, "clean workspace must exit 0; got: {stdout}");
        assert!(stdout.contains("clean"), "unexpected output: {stdout}");
    }

    #[test]
    fn check_report_accepts_conforming_and_rejects_corrupted() {
        use dbscout_telemetry::{
            DatasetEcho, ParamsEcho, PhaseReport, RunReport, StageReport, TotalsReport,
        };
        let report = RunReport {
            dataset: DatasetEcho {
                source: "blobs.csv".to_owned(),
                points: 800,
                dimensions: 2,
            },
            params: ParamsEcho {
                engine: "distributed".to_owned(),
                eps: 0.6,
                min_pts: 5,
                partitions: 8,
                workers: 4,
                kernel: "scalar".to_owned(),
                threads: 1,
                chaos_seed: Some(42),
            },
            phases: vec![PhaseReport {
                name: "grid partitioning".to_owned(),
                wall_clock_us: 12,
            }],
            stages: vec![StageReport {
                label: "grid partitioning:map_partitions".to_owned(),
                tasks: 8,
                ..StageReport::default()
            }],
            process: None,
            serve: None,
            totals: TotalsReport {
                stages: 1,
                tasks: 8,
                ..TotalsReport::default()
            },
        }
        .to_json();
        let corrupted = report.replacen("\"totals\"", "\"tallies\"", 1);
        let root = TempRoot::new(
            "check-report",
            &[
                ("good.json", report.as_str()),
                ("bad.json", corrupted.as_str()),
            ],
        );

        let check = |name: &str| {
            let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
                .arg("check-report")
                .arg(root.path().join(name))
                .output()
                .expect("spawn xtask");
            (
                out.status.success(),
                String::from_utf8_lossy(&out.stderr).into_owned(),
            )
        };

        let (ok, _) = check("good.json");
        assert!(ok, "a writer-produced report must conform");
        let (ok, stderr) = check("bad.json");
        assert!(!ok, "a corrupted report must fail");
        assert!(stderr.contains("totals"), "unexpected stderr: {stderr}");
    }

    #[test]
    fn dirty_root_exits_nonzero_with_json_findings() {
        let root = TempRoot::new(
            "dirty",
            &[(
                "crates/core/src/lib.rs",
                "pub fn bad(v: &[u32]) -> u32 {\n    v.first().copied().unwrap()\n}\n",
            )],
        );
        let (ok, stdout) = run_lint(root.path(), true);
        assert!(!ok, "findings must fail the run");
        assert!(
            stdout.contains("\"rules\":["),
            "JSON missing the advertised rule set: {stdout}"
        );
        assert!(
            stdout.contains("\"XL007\"") && stdout.contains("\"XL009\""),
            "rule set must cover the concurrency lints: {stdout}"
        );
        assert!(
            stdout.contains("\"rule\":\"XL001\""),
            "JSON missing rule: {stdout}"
        );
        assert!(stdout.contains("\"line\":2"), "JSON missing line: {stdout}");
        assert!(
            stdout.contains("\"count\":1"),
            "JSON missing count: {stdout}"
        );
    }

    #[test]
    fn explain_prints_rationale_for_known_rules() {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", "--explain", "XL007"])
            .output()
            .expect("spawn xtask");
        assert!(out.status.success(), "known rule must exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.contains("XL007") && text.contains("xlint: ordered"),
            "explanation must name the rule and its waiver: {text}"
        );
    }

    #[test]
    fn explain_rejects_unknown_rules() {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args(["lint", "--explain", "XL999"])
            .output()
            .expect("spawn xtask");
        assert!(!out.status.success(), "unknown rule must exit nonzero");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("XL999") && err.contains("XL007"),
            "error must echo the rule and list the shipped set: {err}"
        );
    }
}
