//! XL003 fixture: raw parameters used without validation.

pub fn run(eps: f64, min_pts: usize) -> usize {
    ((eps * 2.0) as usize) + min_pts
}
