//! XL000 fixture: an escape hatch without a justification.

pub fn noop() {
    // xtask-lint: allow(XL001)
}
