//! Fixture: hash-ordered iteration leaking into result paths.
use std::collections::{HashMap, HashSet};

pub fn flatten(cells: HashMap<u64, Vec<u32>>) -> Vec<u32> {
    let mut out = Vec::new();
    for ids in cells.values() {
        out.extend_from_slice(ids);
    }
    out
}

pub fn dedup(seen: HashSet<u64>) -> Vec<u64> {
    seen.into_iter().collect()
}

pub fn ctor_tracked() -> usize {
    let mut counts = HashMap::new();
    counts.insert(1u32, 2u32);
    for (k, v) in &counts {
        let _ = (k, v);
    }
    counts.len()
}
