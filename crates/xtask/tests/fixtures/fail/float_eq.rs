//! XL002 fixture: raw float comparisons and raw distance predicates.

pub fn bad_eq(x: f64) -> bool {
    x == 0.0
}

pub fn bad_pred(a: &[f64], b: &[f64], limit: f64) -> bool {
    dist(a, b) <= limit
}

fn dist(_a: &[f64], _b: &[f64]) -> f64 {
    0.0
}
