pub fn noisy(n: usize) {
    let label = "println!(not real)"; // strings and comments are stripped
    println!("processed {n} records");
    eprintln!("warning: {label}");
    print!("partial");
    my::println!("macro path segments are someone else's macro");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging output is fine here");
    }
}
