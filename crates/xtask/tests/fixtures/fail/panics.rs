//! XL001 fixture: every panic path in library code is flagged.

pub fn first_plus(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = std::env::var("X").expect("set X");
    if b.is_empty() {
        panic!("empty");
    }
    *a + v[0]
}

pub fn later() {
    todo!()
}
