//! XL005 fixture: panic recovery outside the dataflow executor.

pub fn swallow(work: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(work).is_ok()
}

#[cfg(test)]
mod tests {
    // Exempt: tests may assert on panics.
    fn asserts_panic() {
        let _ = std::panic::catch_unwind(|| {});
    }
}
