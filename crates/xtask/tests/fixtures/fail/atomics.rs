//! Fixture: Relaxed orderings on visibility-gating atomics.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Relaxed);
}

pub fn observe(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Relaxed)
}

pub fn tally(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn synced(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Acquire)
}
