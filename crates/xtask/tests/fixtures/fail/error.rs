//! XL004 fixture: an error enum with no impls or assertions.

pub enum BrokenError {
    Boom,
}
