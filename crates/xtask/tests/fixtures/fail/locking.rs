//! Fixture: raw locks and guards held across task boundaries.
use std::sync::{Mutex, MutexGuard};

pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn raw_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn racy(m: &Mutex<u32>) -> bool {
    m.try_lock().is_ok()
}

pub fn held_across_join(m: &Mutex<u32>, h: std::thread::JoinHandle<()>) {
    let guard = lock_unpoisoned(m);
    let _ = h.join();
    let _ = *guard;
}

pub fn dropped_before_sleep(m: &Mutex<u32>) -> u32 {
    let guard = lock_unpoisoned(m);
    let v = *guard;
    drop(guard);
    std::thread::sleep(std::time::Duration::from_millis(1));
    v
}
