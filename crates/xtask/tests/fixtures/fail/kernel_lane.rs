// Decoy kernel-lane tokens outside the sanctioned spatial modules.

fn accumulate_unrolled(acc: &mut f64, xs: &[f64]) {
    for x in xs {
        *acc += x;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn simd_sum(xs: &[f64]) -> f64 {
    use std::arch::x86_64::_mm256_setzero_pd;
    let _ = xs.len() as f64;
    0.0
}
