//! Pass fixture: the happy path of every rule at once.

pub fn checked(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn with_params(eps: f64, min_pts: usize) -> bool {
    if !eps.is_finite() || min_pts == 0 {
        return false;
    }
    eps > 0.0
}

pub fn hatch(v: &[u32]) -> u32 {
    // xtask-lint: allow(XL001) -- fixture: justified indexing with a reason
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_index() {
        let v = vec![1u32, 2];
        assert_eq!(v[0], 1);
        assert_eq!(*v.first().unwrap(), 1);
        assert!((0.5f64).fract() == 0.5);
    }
}
