//! Fixture: lexer edge cases must not open phantom strings.

/* outer /* nested */ if nesting broke, this leaks: x.unwrap() */
pub fn edges() -> (usize, u8) {
    let raw = r#"raw with ".unwrap()" inside"#;
    let byte = b'"';
    // if the byte char broke: ".unwrap() would leak here"
    (raw.len(), byte)
}
