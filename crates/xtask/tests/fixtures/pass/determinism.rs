//! Fixture: canonicalized or waived hash iteration is clean.
use std::collections::HashMap;

pub fn sorted(cells: HashMap<u64, u32>) -> Vec<(u64, u32)> {
    // xlint: ordered -- sorted into canonical order immediately below
    let mut v: Vec<(u64, u32)> = cells.into_iter().collect();
    v.sort_unstable();
    v
}

pub fn count(cells: &HashMap<u64, u32>) -> usize {
    // xlint: ordered -- counting matches is order-insensitive
    cells.values().filter(|v| **v > 0).count()
}

pub fn probe(cells: &HashMap<u64, u32>) -> Option<u32> {
    cells.get(&7).copied()
}
