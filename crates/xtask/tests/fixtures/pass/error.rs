//! Pass fixture: a fully hygienic error module.

use std::fmt;

pub enum FineError {
    Bad,
}

impl fmt::Display for FineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FineError::Bad => write!(f, "bad"),
        }
    }
}

impl std::error::Error for FineError {}

const fn _assert_error_bounds<T: std::error::Error + Send + Sync + 'static>() {}
const _: () = _assert_error_bounds::<FineError>();
