//! Randomized property tests for the evaluation metrics, driven by a
//! seeded [`dbscout_rng::Rng`] for reproducibility.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic,
    clippy::float_cmp
)]

use dbscout_metrics::{average_precision, roc_auc, ConfusionMatrix};
use dbscout_rng::Rng;

fn bools(rng: &mut Rng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

fn scores(rng: &mut Rng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn confusion_counts_partition_the_input() {
    let mut rng = Rng::seed_from_u64(0xC001);
    for _ in 0..64 {
        let n = rng.gen_range(0usize..200);
        let pred = bools(&mut rng, n);
        let seed = rng.gen_range(0u64..1000);
        // Derive "actual" deterministically from pred+seed.
        let actual: Vec<bool> = pred
            .iter()
            .enumerate()
            .map(|(i, &p)| p ^ (i as u64 + seed).is_multiple_of(3))
            .collect();
        let m = ConfusionMatrix::from_masks(&pred, &actual);
        assert_eq!(m.total(), pred.len());
        for v in [m.precision(), m.recall(), m.f1(), m.accuracy()] {
            assert!((0.0..=1.0).contains(&v), "metric {v}");
        }
    }
}

#[test]
fn f1_is_harmonic_mean() {
    let mut rng = Rng::seed_from_u64(0xC002);
    for _ in 0..64 {
        let m = ConfusionMatrix {
            tp: rng.gen_range(0usize..100),
            fp: rng.gen_range(0usize..100),
            fn_: rng.gen_range(0usize..100),
            tn: rng.gen_range(0usize..100),
        };
        let (p, r) = (m.precision(), m.recall());
        if p + r > 0.0 {
            assert!((m.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
        } else {
            assert_eq!(m.f1(), 0.0);
        }
    }
}

#[test]
fn auc_invariant_under_monotone_transform() {
    let mut rng = Rng::seed_from_u64(0xC003);
    for _ in 0..64 {
        let n = rng.gen_range(2usize..100);
        let scores = scores(&mut rng, n, -100.0, 100.0);
        let labels = bools(&mut rng, n);
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 0.1).exp()).collect();
        match (roc_auc(&scores, &labels), roc_auc(&transformed, &labels)) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (None, None) => {}
            other => panic!("definedness diverged: {other:?}"),
        }
    }
}

#[test]
fn auc_of_negated_scores_is_complement() {
    let mut rng = Rng::seed_from_u64(0xC004);
    for _ in 0..64 {
        let n = rng.gen_range(2usize..100);
        // Ensure distinct scores so ties cannot blur the complement law.
        let scores: Vec<f64> = scores(&mut rng, n, -100.0, 100.0)
            .iter()
            .enumerate()
            .map(|(i, s)| s + i as f64 * 1e-6)
            .collect();
        let labels = bools(&mut rng, n);
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        if let (Some(a), Some(b)) = (roc_auc(&scores, &labels), roc_auc(&negated, &labels)) {
            assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
        }
    }
}

#[test]
fn average_precision_bounded() {
    let mut rng = Rng::seed_from_u64(0xC005);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..100);
        let scores = scores(&mut rng, n, -10.0, 10.0);
        let labels = bools(&mut rng, n);
        if let Some(ap) = average_precision(&scores, &labels) {
            assert!((0.0..=1.0).contains(&ap), "AP {ap}");
        }
    }
}

#[test]
fn perfect_separation_has_auc_one() {
    let mut rng = Rng::seed_from_u64(0xC006);
    for _ in 0..64 {
        let n_pos = rng.gen_range(1usize..30);
        let n_neg = rng.gen_range(1usize..30);
        let pos = scores(&mut rng, n_pos, 10.0, 20.0);
        let neg = scores(&mut rng, n_neg, -20.0, -10.0);
        let mut scores = pos.clone();
        scores.extend(neg.iter());
        let mut labels = vec![true; pos.len()];
        labels.extend(vec![false; neg.len()]);
        assert_eq!(roc_auc(&scores, &labels), Some(1.0));
        assert_eq!(average_precision(&scores, &labels), Some(1.0));
    }
}
