//! Property-based tests for the evaluation metrics.

use dbscout_metrics::{average_precision, roc_auc, ConfusionMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn confusion_counts_partition_the_input(
        pred in prop::collection::vec(prop::bool::ANY, 0..200),
        seed in 0u64..1000,
    ) {
        // Derive "actual" deterministically from pred+seed.
        let actual: Vec<bool> = pred
            .iter()
            .enumerate()
            .map(|(i, &p)| p ^ (i as u64 + seed).is_multiple_of(3))
            .collect();
        let m = ConfusionMatrix::from_masks(&pred, &actual);
        prop_assert_eq!(m.total(), pred.len());
        for v in [m.precision(), m.recall(), m.f1(), m.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v}");
        }
    }

    #[test]
    fn f1_is_harmonic_mean(
        tp in 0usize..100,
        fp in 0usize..100,
        fn_ in 0usize..100,
        tn in 0usize..100,
    ) {
        let m = ConfusionMatrix { tp, fp, fn_, tn };
        let (p, r) = (m.precision(), m.recall());
        if p + r > 0.0 {
            prop_assert!((m.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
        } else {
            prop_assert_eq!(m.f1(), 0.0);
        }
    }

    #[test]
    fn auc_invariant_under_monotone_transform(
        scores in prop::collection::vec(-100.0f64..100.0, 2..100),
        labels in prop::collection::vec(prop::bool::ANY, 2..100),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 0.1).exp()).collect();
        match (roc_auc(scores, labels), roc_auc(&transformed, labels)) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (None, None) => {}
            other => prop_assert!(false, "definedness diverged: {other:?}"),
        }
    }

    #[test]
    fn auc_of_negated_scores_is_complement(
        scores in prop::collection::vec(-100.0f64..100.0, 2..100),
        labels in prop::collection::vec(prop::bool::ANY, 2..100),
    ) {
        let n = scores.len().min(labels.len());
        // Ensure distinct scores so ties cannot blur the complement law.
        let scores: Vec<f64> = scores[..n]
            .iter()
            .enumerate()
            .map(|(i, s)| s + i as f64 * 1e-6)
            .collect();
        let labels = &labels[..n];
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        if let (Some(a), Some(b)) = (roc_auc(&scores, labels), roc_auc(&negated, labels)) {
            prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
        }
    }

    #[test]
    fn average_precision_bounded(
        scores in prop::collection::vec(-10.0f64..10.0, 1..100),
        labels in prop::collection::vec(prop::bool::ANY, 1..100),
    ) {
        let n = scores.len().min(labels.len());
        if let Some(ap) = average_precision(&scores[..n], &labels[..n]) {
            prop_assert!((0.0..=1.0).contains(&ap), "AP {ap}");
        }
    }

    #[test]
    fn perfect_separation_has_auc_one(
        pos in prop::collection::vec(10.0f64..20.0, 1..30),
        neg in prop::collection::vec(-20.0f64..-10.0, 1..30),
    ) {
        let mut scores = pos.clone();
        scores.extend(neg.iter());
        let mut labels = vec![true; pos.len()];
        labels.extend(vec![false; neg.len()]);
        prop_assert_eq!(roc_auc(&scores, &labels), Some(1.0));
        prop_assert_eq!(average_precision(&scores, &labels), Some(1.0));
    }
}
