//! A dependency-free SVG line-chart writer, so the figure-reproduction
//! binaries emit actual figures (Figs. 10–13 of the paper) next to their
//! textual tables.

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }
}

/// A simple multi-series line chart with optional log axes.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    log_x: bool,
    log_y: bool,
    series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

impl LineChart {
    /// Starts a chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Uses a log₁₀ x-axis (all x values must be positive).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Uses a log₁₀ y-axis (all y values must be positive).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// # Panics
    ///
    /// Panics if a log axis is requested with non-positive values, or if
    /// no series has any points — caller bugs, not data conditions.
    pub fn to_svg(&self) -> String {
        let tx = |x: f64| if self.log_x { x.log10() } else { x };
        let ty = |y: f64| if self.log_y { y.log10() } else { y };
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| {
                s.points.iter().map(|&(x, y)| {
                    assert!(
                        (!self.log_x || x > 0.0) && (!self.log_y || y > 0.0),
                        "log axis with non-positive value ({x}, {y})"
                    );
                    (tx(x), ty(y))
                })
            })
            .collect();
        assert!(!all.is_empty(), "chart has no data");
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1.total_cmp(&x0).is_eq() {
            x1 = x0 + 1.0;
        }
        if y1.total_cmp(&y0).is_eq() {
            y1 = y0 + 1.0;
        }
        // A little headroom.
        let pad_y = (y1 - y0) * 0.08;
        y1 += pad_y;
        if !self.log_y {
            y0 = if y0 > 0.0 && y0 - pad_y < 0.0 {
                0.0
            } else {
                y0 - pad_y
            };
        }

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

        let mut svg = String::new();
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        ));
        svg.push_str(&format!(
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-size="15">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        ));

        // Axes and ticks.
        svg.push_str(&format!(
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/><line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h,
            MARGIN_L + plot_w,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h,
        ));
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * i as f64 / 4.0;
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let lx = if self.log_x { 10f64.powf(fx) } else { fx };
            let ly = if self.log_y { 10f64.powf(fy) } else { fy };
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"#,
                px(fx),
                MARGIN_T + plot_h + 18.0,
                fmt_tick(lx)
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"#,
                MARGIN_L - 6.0,
                py(fy) + 4.0,
                fmt_tick(ly)
            ));
            svg.push_str(&format!(
                r##"<line x1="{:.1}" y1="{MARGIN_T}" x2="{:.1}" y2="{:.1}" stroke="#eeeeee"/>"##,
                px(fx),
                px(fx),
                MARGIN_T + plot_h
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        ));
        svg.push_str(&format!(
            r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        ));

        // Series.
        for (si, s) in self.series.iter().enumerate() {
            let color = PALETTE
                .get(si % PALETTE.len())
                .copied()
                .unwrap_or("#000000");
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(tx(x)), py(ty(y))))
                .collect();
            svg.push_str(&format!(
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                pts.join(" ")
            ));
            for &(x, y) in &s.points {
                svg.push_str(&format!(
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    px(tx(x)),
                    py(ty(y))
                ));
            }
            // Legend entry.
            let ly = MARGIN_T + 8.0 + 18.0 * si as f64;
            svg.push_str(&format!(
                r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/><text x="{:.1}" y="{:.1}" font-size="12">{}</text>"#,
                MARGIN_L + plot_w - 150.0,
                MARGIN_L + plot_w - 125.0,
                MARGIN_L + plot_w - 118.0,
                ly + 4.0,
                escape(&s.name)
            ));
        }
        svg.push_str("</svg>");
        svg
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.1e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("t", "x", "y")
            .series(Series::new("a", vec![(1.0, 2.0), (2.0, 4.0), (3.0, 8.0)]))
            .series(Series::new("b", vec![(1.0, 1.0), (3.0, 1.5)]))
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn log_axes_transform() {
        let svg = LineChart::new("t", "x", "y")
            .log_x()
            .log_y()
            .series(Series::new("a", vec![(1.0, 10.0), (100.0, 1000.0)]))
            .to_svg();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "log axis")]
    fn log_axis_rejects_zero() {
        let _ = LineChart::new("t", "x", "y")
            .log_y()
            .series(Series::new("a", vec![(1.0, 0.0)]))
            .to_svg();
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_chart_panics() {
        let _ = LineChart::new("t", "x", "y").to_svg();
    }

    #[test]
    fn escapes_markup() {
        let svg = LineChart::new("a < b & c", "x", "y")
            .series(Series::new("s", vec![(0.0, 0.0)]))
            .to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn degenerate_single_point_does_not_divide_by_zero() {
        let svg = LineChart::new("t", "x", "y")
            .series(Series::new("a", vec![(5.0, 5.0)]))
            .to_svg();
        assert!(!svg.contains("NaN"));
    }
}
