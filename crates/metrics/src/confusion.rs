//! Confusion-matrix metrics for the outlier class.
//!
//! The paper's quality metric is the **F1-score computed for the outlier
//! class** (§IV-A4); Tables IV–V report raw TP/FP/FN of an approximate
//! detector against the exact (DBSCOUT) outlier set.

/// Binary confusion matrix where the *positive* class is "outlier".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted outlier, actually outlier.
    pub tp: usize,
    /// Predicted outlier, actually inlier.
    pub fp: usize,
    /// Predicted inlier, actually outlier.
    pub fn_: usize,
    /// Predicted inlier, actually inlier.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/truth masks
    /// (`true` = outlier).
    ///
    /// # Panics
    ///
    /// Panics if the masks differ in length — they must describe the same
    /// dataset.
    pub fn from_masks(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "mask lengths differ");
        let mut m = ConfusionMatrix::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, true) => m.fn_ += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Builds the matrix from sorted-or-not id sets over `n` points.
    pub fn from_id_sets(n: usize, predicted: &[u32], actual: &[u32]) -> Self {
        let mut p = vec![false; n];
        for &i in predicted {
            if let Some(slot) = p.get_mut(i as usize) {
                *slot = true;
            }
        }
        let mut a = vec![false; n];
        for &i in actual {
            if let Some(slot) = a.get_mut(i as usize) {
                *slot = true;
            }
        }
        Self::from_masks(&p, &a)
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision of the outlier class; 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall of the outlier class; 0 when there are no actual outliers.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1-score of the outlier class (harmonic mean; 0 when degenerate).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Plain accuracy over both classes.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let truth = vec![true, false, true, false];
        let m = ConfusionMatrix::from_masks(&truth, &truth);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (2, 0, 0, 2));
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn known_values() {
        // tp=2 fp=1 fn=1 tn=6: p=2/3, r=2/3, f1=2/3.
        let predicted = vec![
            true, true, true, false, false, false, false, false, false, false,
        ];
        let actual = vec![
            true, true, false, true, false, false, false, false, false, false,
        ];
        let m = ConfusionMatrix::from_masks(&predicted, &actual);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (2, 1, 1, 6));
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = ConfusionMatrix::from_masks(&[false; 4], &[false; 4]);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn from_id_sets_matches_from_masks() {
        let m1 = ConfusionMatrix::from_id_sets(6, &[0, 2], &[2, 4]);
        let m2 = ConfusionMatrix::from_masks(
            &[true, false, true, false, false, false],
            &[false, false, true, false, true, false],
        );
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "mask lengths")]
    fn mismatched_masks_panic() {
        ConfusionMatrix::from_masks(&[true], &[true, false]);
    }
}
