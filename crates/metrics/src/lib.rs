//! Evaluation metrics and timing harness for the DBSCOUT experiments.
//!
//! * [`ConfusionMatrix`] — outlier-class precision/recall/F1 (paper
//!   §IV-A4, Table III) and TP/FP/FN accounting against an exact
//!   reference (Tables IV–V);
//! * [`timing`] — repeated-run wall-clock measurement with mean and
//!   standard deviation ("all the tests were run five times", §IV-A4);
//! * [`table`] — fixed-width table rendering for the experiment binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Unit tests may panic freely; library code is held to the panic-freedom
// gates in `[workspace.lints]` and `cargo xtask lint`.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic,
        clippy::float_cmp
    )
)]
pub mod confusion;
pub mod plot;
pub mod ranking;
pub mod table;
pub mod timing;

pub use confusion::ConfusionMatrix;
pub use ranking::{average_precision, roc_auc};
pub use timing::{time_runs, TimingStats};
