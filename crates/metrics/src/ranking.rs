//! Threshold-free ranking metrics for score-based detectors: ROC AUC and
//! average precision. The paper evaluates at a fixed contamination
//! (F1-score); ranking metrics complement that by judging the whole
//! score ordering, which is how score-based baselines (LOF, IF, k-NN
//! distance) are usually compared.

/// Area under the ROC curve for scores where **higher = more outlying**.
///
/// Computed via the Mann–Whitney statistic with midrank tie handling.
/// Returns `None` when either class is empty (AUC undefined).
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "lengths differ");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }
    // Ranks with midrank ties.
    let score_at = |i: usize| scores.get(i).copied().unwrap_or(f64::NEG_INFINITY);
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| score_at(a).total_cmp(&score_at(b)));
    let tied = |a: usize, b: usize| {
        let (sa, sb) = (idx.get(a).copied(), idx.get(b).copied());
        matches!((sa, sb), (Some(sa), Some(sb)) if score_at(sa).total_cmp(&score_at(sb)).is_eq())
    };
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && tied(j + 1, i) {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in idx.get(i..=j).into_iter().flatten() {
            if let Some(r) = ranks.get_mut(k) {
                *r = midrank;
            }
        }
        i = j + 1;
    }
    let rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum - (pos * (pos + 1)) as f64 / 2.0;
    Some(u / (pos * neg) as f64)
}

/// Average precision (area under the precision–recall curve by the
/// step-wise rule) for scores where **higher = more outlying**. Ties are
/// broken by index for determinism. Returns `None` when there are no
/// positive labels.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "lengths differ");
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 {
        return None;
    }
    let score_at = |i: usize| scores.get(i).copied().unwrap_or(f64::NEG_INFINITY);
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| score_at(b).total_cmp(&score_at(a)).then(a.cmp(&b)));
    let mut hits = 0usize;
    let mut ap = 0.0;
    for (rank, &i) in idx.iter().enumerate() {
        if labels.get(i).copied().unwrap_or(false) {
            hits += 1;
            ap += hits as f64 / (rank + 1) as f64;
        }
    }
    Some(ap / pos as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), Some(1.0));
        assert_eq!(average_precision(&scores, &labels), Some(1.0));
    }

    #[test]
    fn inverted_ranking() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), Some(0.0));
    }

    #[test]
    fn random_like_ranking_is_half() {
        // Interleaved: pos at scores 4,2 and neg at 3,1 → AUC = 0.5.
        let scores = [4.0, 3.0, 2.0, 1.0];
        let labels = [true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), Some(0.75));
        let labels = [false, true, false, true];
        assert_eq!(roc_auc(&scores, &labels), Some(0.25));
    }

    #[test]
    fn ties_get_midranks() {
        // All scores equal: AUC must be exactly 0.5 regardless of labels.
        let scores = [1.0, 1.0, 1.0, 1.0];
        let labels = [true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), Some(0.5));
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), None);
        assert_eq!(roc_auc(&[1.0, 2.0], &[false, false]), None);
        assert_eq!(average_precision(&[1.0], &[false]), None);
    }

    #[test]
    fn average_precision_known_value() {
        // Ranking: pos, neg, pos → AP = (1/1 + 2/3) / 2 = 5/6.
        let scores = [0.9, 0.5, 0.3];
        let labels = [true, false, true];
        let ap = average_precision(&scores, &labels).unwrap();
        assert!((ap - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        roc_auc(&[1.0], &[true, false]);
    }
}
