//! Minimal fixed-width table rendering for the experiment binaries, so
//! their stdout mirrors the paper's tables.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for rows built from `&str`s.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                let w = widths.get(c).copied().unwrap_or(0);
                for _ in cell.chars().count()..w {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats seconds with one decimal, or `"-"` for `None` (the paper marks
/// timed-out / out-of-memory runs with a dash).
pub fn secs_or_dash(secs: Option<f64>) -> String {
    match secs {
        Some(s) => format!("{s:.1}"),
        None => "-".to_string(),
    }
}

/// A [`TimingStats::summary_cell`] for completed runs, or `"-"` for runs
/// the budget cut off.
pub fn stats_or_dash(stats: Option<&crate::TimingStats>) -> String {
    match stats {
        Some(s) => s.summary_cell(),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_str(&["a", "1"]).row_str(&["longer-name", "22"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
        // The value column starts at the same offset everywhere.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".to_string()]);
        t.row(&["1".to_string(), "2".to_string(), "3".to_string()]);
        let out = t.render();
        assert!(out.contains('x'));
        assert!(!out.contains('3'));
    }

    #[test]
    fn secs_or_dash_formats() {
        assert_eq!(secs_or_dash(Some(12.34)), "12.3");
        assert_eq!(secs_or_dash(None), "-");
    }
}
