//! Repeated-run timing: the paper runs every configuration five times and
//! reports mean and standard deviation (§IV-A4).

use std::time::{Duration, Instant};

/// Aggregate of a series of run times.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStats {
    /// Individual run durations, in execution order.
    pub runs: Vec<Duration>,
}

impl TimingStats {
    /// Wraps raw durations.
    pub fn new(runs: Vec<Duration>) -> Self {
        Self { runs }
    }

    /// Mean run time in seconds (0 for an empty series).
    pub fn mean_secs(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(Duration::as_secs_f64).sum::<f64>() / self.runs.len() as f64
    }

    /// Population standard deviation in seconds.
    pub fn std_dev_secs(&self) -> f64 {
        if self.runs.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_secs();
        let var = self
            .runs
            .iter()
            .map(|d| {
                let x = d.as_secs_f64() - mean;
                x * x
            })
            .sum::<f64>()
            / self.runs.len() as f64;
        var.sqrt()
    }

    /// Fastest run in seconds.
    pub fn min_secs(&self) -> f64 {
        self.runs
            .iter()
            .map(Duration::as_secs_f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Slowest run in seconds.
    pub fn max_secs(&self) -> f64 {
        self.runs
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0, f64::max)
    }

    /// The `q`-quantile of the run times in seconds, `q` in `[0, 1]`,
    /// with linear interpolation between order statistics (0 for an
    /// empty series). With the paper's five repetitions the median is an
    /// exact run and p95 interpolates toward the slowest.
    pub fn percentile_secs(&self, q: f64) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.runs.iter().map(Duration::as_secs_f64).collect();
        sorted.sort_by(f64::total_cmp);
        let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let (Some(&a), Some(&b)) = (sorted.get(lo), sorted.get(hi)) else {
            return 0.0;
        };
        a + (b - a) * (rank - lo as f64)
    }

    /// Median run time in seconds.
    pub fn p50_secs(&self) -> f64 {
        self.percentile_secs(0.50)
    }

    /// 95th-percentile run time in seconds.
    pub fn p95_secs(&self) -> f64 {
        self.percentile_secs(0.95)
    }

    /// 99th-percentile run time in seconds. With small repetition counts
    /// this interpolates close to the slowest run; it separates a fat
    /// straggler tail from a single outlier in larger series.
    pub fn p99_secs(&self) -> f64 {
        self.percentile_secs(0.99)
    }

    /// One table cell summarising the series:
    /// `mean ± std (p50 a, p95 b, p99 c)`, seconds with one decimal. The
    /// percentiles expose straggler-shaped tails the mean hides.
    pub fn summary_cell(&self) -> String {
        format!(
            "{:.1} ± {:.1} (p50 {:.1}, p95 {:.1}, p99 {:.1})",
            self.mean_secs(),
            self.std_dev_secs(),
            self.p50_secs(),
            self.p95_secs(),
            self.p99_secs()
        )
    }
}

/// Runs `f` `repetitions` times, timing each run.
///
/// The closure's return value is discarded after a `std::hint::black_box`
/// so the optimizer cannot elide the work.
pub fn time_runs<T>(repetitions: usize, mut f: impl FnMut() -> T) -> TimingStats {
    let mut runs = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        let t = Instant::now();
        std::hint::black_box(f());
        runs.push(t.elapsed());
    }
    TimingStats::new(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_series() {
        let s = TimingStats::new(vec![
            Duration::from_secs(1),
            Duration::from_secs(2),
            Duration::from_secs(3),
        ]);
        assert!((s.mean_secs() - 2.0).abs() < 1e-12);
        // Population std dev of {1,2,3} = sqrt(2/3).
        assert!((s.std_dev_secs() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min_secs(), 1.0);
        assert_eq!(s.max_secs(), 3.0);
        assert_eq!(s.p50_secs(), 2.0);
        // p95 of {1,2,3}: rank 1.9 interpolates between 2 and 3.
        assert!((s.p95_secs() - 2.9).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_order_insensitive_and_clamped() {
        let s = TimingStats::new(vec![
            Duration::from_secs(5),
            Duration::from_secs(1),
            Duration::from_secs(3),
            Duration::from_secs(2),
            Duration::from_secs(4),
        ]);
        // Five runs (the paper's repetition count): median is exact.
        assert_eq!(s.p50_secs(), 3.0);
        assert!((s.percentile_secs(0.95) - 4.8).abs() < 1e-12);
        assert!((s.p99_secs() - 4.96).abs() < 1e-12);
        assert!(s.p95_secs() <= s.p99_secs() && s.p99_secs() <= s.max_secs());
        assert_eq!(s.percentile_secs(0.0), 1.0);
        assert_eq!(s.percentile_secs(1.0), 5.0);
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(s.percentile_secs(-1.0), 1.0);
        assert_eq!(s.percentile_secs(2.0), 5.0);
        assert_eq!(TimingStats::new(vec![]).p95_secs(), 0.0);
    }

    #[test]
    fn degenerate_series() {
        let empty = TimingStats::new(vec![]);
        assert_eq!(empty.mean_secs(), 0.0);
        assert_eq!(empty.std_dev_secs(), 0.0);
        let one = TimingStats::new(vec![Duration::from_millis(5)]);
        assert_eq!(one.std_dev_secs(), 0.0);
    }

    #[test]
    fn time_runs_counts_and_measures() {
        let mut calls = 0;
        let s = time_runs(4, || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(2));
            calls
        });
        assert_eq!(calls, 4);
        assert_eq!(s.runs.len(), 4);
        assert!(s.mean_secs() >= 0.002);
    }
}
